//! Row-major projected matrices — the working representation every
//! detector scores.
//!
//! A [`ProjectedMatrix`] owns a dense row-major buffer so that the O(N²)
//! distance scans of LOF/ABOD walk contiguous memory regardless of which
//! feature subset was projected.

/// A dense row-major `n_rows × dim` matrix of finite `f64`s, produced by
/// [`crate::Dataset::project`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectedMatrix {
    data: Vec<f64>,
    n_rows: usize,
    dim: usize,
}

impl ProjectedMatrix {
    /// Wraps a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != n_rows * dim`.
    #[must_use]
    pub fn new(data: Vec<f64>, n_rows: usize, dim: usize) -> Self {
        assert_eq!(
            data.len(),
            n_rows * dim,
            "buffer length {} does not match {n_rows}x{dim}",
            data.len()
        );
        ProjectedMatrix { data, n_rows, dim }
    }

    /// Number of rows (points).
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of projected features.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One row as a slice.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }

    /// Squared Euclidean distance between rows `i` and `j`.
    #[must_use]
    pub fn sq_dist(&self, i: usize, j: usize) -> f64 {
        sq_dist(self.row(i), self.row(j))
    }

    /// The raw row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
/// Debug-asserts equal lengths.
#[must_use]
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Dot product of two equal-length slices.
#[must_use]
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn rows_and_dims() {
        let m = ProjectedMatrix::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let rows: Vec<&[f64]> = m.rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn rejects_mismatched_buffer() {
        let _ = ProjectedMatrix::new(vec![1.0; 5], 2, 3);
    }

    #[test]
    fn distances() {
        let m = ProjectedMatrix::new(vec![0.0, 0.0, 3.0, 4.0], 2, 2);
        assert_eq!(m.sq_dist(0, 1), 25.0);
        assert_eq!(m.sq_dist(0, 0), 0.0);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}
