//! Minimal dependency-free CSV codec for numeric datasets.
//!
//! Supports exactly the shape the benchmark needs: an optional header row
//! of feature names followed by rows of finite decimal numbers separated
//! by commas. Quoting/escaping is intentionally out of scope — generated
//! and exported datasets never need it.

use crate::dataset::Dataset;
use crate::{DataError, Result};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Reads a dataset from CSV text. When `has_header` is true the first
/// line provides feature names.
///
/// ```
/// use anomex_dataset::csv::read_csv;
/// let ds = read_csv("a,b\n1,2\n3,4\n".as_bytes(), true).unwrap();
/// assert_eq!(ds.n_rows(), 2);
/// assert_eq!(ds.feature_names(), &["a", "b"]);
/// ```
///
/// # Errors
/// [`DataError::Parse`] with a 1-based line number on malformed input.
pub fn read_csv<R: Read>(reader: R, has_header: bool) -> Result<Dataset> {
    let mut lines = BufReader::new(reader).lines();
    let mut line_no = 0usize;

    let mut names: Option<Vec<String>> = None;
    if has_header {
        line_no += 1;
        let header = lines
            .next()
            .ok_or(DataError::Parse {
                line: 1,
                detail: "empty input".into(),
            })?
            .map_err(DataError::Io)?;
        names = Some(header.split(',').map(|s| s.trim().to_string()).collect());
    }

    let mut columns: Vec<Vec<f64>> = Vec::new();
    for line in lines {
        line_no += 1;
        let line = line.map_err(DataError::Io)?;
        if line.trim().is_empty() {
            continue;
        }
        let mut count = 0usize;
        for (i, field) in line.split(',').enumerate() {
            let v: f64 = field.trim().parse().map_err(|_| DataError::Parse {
                line: line_no,
                detail: format!("cannot parse {:?} as a number", field.trim()),
            })?;
            if !v.is_finite() {
                return Err(DataError::Parse {
                    line: line_no,
                    detail: "non-finite value".into(),
                });
            }
            if columns.len() <= i {
                if !columns.is_empty() && !columns[0].is_empty() && columns[0].len() > 1 {
                    return Err(DataError::Parse {
                        line: line_no,
                        detail: "row has more fields than previous rows".into(),
                    });
                }
                columns.push(Vec::new());
            }
            columns[i].push(v);
            count = i + 1;
        }
        if count != columns.len() {
            return Err(DataError::Parse {
                line: line_no,
                detail: format!("row has {count} fields, expected {}", columns.len()),
            });
        }
    }

    let ds = Dataset::from_columns(columns)?;
    match names {
        Some(n) => ds.with_names(n),
        None => Ok(ds),
    }
}

/// Reads a dataset from a CSV file on disk.
///
/// # Errors
/// I/O and parse errors as in [`read_csv`].
pub fn read_csv_file<P: AsRef<Path>>(path: P, has_header: bool) -> Result<Dataset> {
    let file = std::fs::File::open(path)?;
    read_csv(file, has_header)
}

/// Writes a dataset as CSV with a header of feature names.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_csv<W: Write>(ds: &Dataset, mut writer: W) -> Result<()> {
    writeln!(writer, "{}", ds.feature_names().join(","))?;
    let mut buf = String::new();
    for i in 0..ds.n_rows() {
        buf.clear();
        for f in 0..ds.n_features() {
            if f > 0 {
                buf.push(',');
            }
            buf.push_str(&format!("{}", ds.value(i, f)));
        }
        writeln!(writer, "{buf}")?;
    }
    Ok(())
}

/// Writes a dataset to a CSV file on disk.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_csv_file<P: AsRef<Path>>(ds: &Dataset, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_csv(ds, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn round_trip() {
        let ds = Dataset::from_rows(vec![vec![1.5, -2.0], vec![0.25, 3.0]])
            .unwrap()
            .with_names(vec!["x", "y"])
            .unwrap();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(&buf[..], true).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn headerless() {
        let ds = read_csv("1,2\n3,4\n".as_bytes(), false).unwrap();
        assert_eq!(ds.n_rows(), 2);
        assert_eq!(ds.feature_names(), &["F0", "F1"]);
    }

    #[test]
    fn skips_blank_lines() {
        let ds = read_csv("1,2\n\n3,4\n\n".as_bytes(), false).unwrap();
        assert_eq!(ds.n_rows(), 2);
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let err = read_csv("a,b\n1,2\n1,oops\n".as_bytes(), true).unwrap_err();
        match err {
            DataError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_ragged_rows() {
        assert!(read_csv("1,2\n1\n".as_bytes(), false).is_err());
        assert!(read_csv("1\n1,2\n".as_bytes(), false).is_err());
    }

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(read_csv("".as_bytes(), true).is_err());
        assert!(read_csv("inf,1\n".as_bytes(), false).is_err());
    }
}
