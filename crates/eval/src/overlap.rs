//! Score-distribution overlap analysis — the paper's "complementary
//! experiments" (§4.1/§4.2, described but not plotted there).
//!
//! The stage-wise search strategies live or die by how well the detector
//! separates outlier from inlier scores in **lower-dimensional
//! projections** of the relevant subspace. This module quantifies that
//! separability as the AUC (Mann–Whitney) of the planted outliers'
//! scores against the inliers', per projection dimensionality — the
//! *masking profile* of a dataset × detector pair.

use anomex_dataset::gen::Generated;
use anomex_dataset::Subspace;
use anomex_detectors::Detector;

/// Rank-based AUC of `positives` against the rest: the probability that
/// a uniformly drawn positive outscores a uniformly drawn negative
/// (ties counted half). Returns 0.5 for empty sides.
#[must_use]
pub fn auc(scores: &[f64], positives: &[usize]) -> f64 {
    let is_pos = |i: usize| positives.contains(&i);
    let mut n_pos = 0u64;
    let mut n_neg = 0u64;
    let mut wins = 0.0f64;
    for i in 0..scores.len() {
        if !is_pos(i) {
            continue;
        }
        n_pos += 1;
        for j in 0..scores.len() {
            if is_pos(j) {
                continue;
            }
            if n_pos == 1 {
                n_neg += 1;
            }
            wins += match scores[i].total_cmp(&scores[j]) {
                std::cmp::Ordering::Greater => 1.0,
                std::cmp::Ordering::Equal => 0.5,
                std::cmp::Ordering::Less => 0.0,
            };
        }
    }
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    wins / (n_pos * n_neg) as f64
}

/// One row of a masking profile: for a planted block, the mean AUC of
/// its outliers over sampled `k`-dim projections of the block, for
/// `k = 1 ..= block.dim()`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMasking {
    /// The planted relevant subspace.
    pub block: Subspace,
    /// `auc_by_dim[k-1]` = mean AUC over the `k`-dim projections of the
    /// block (the final entry is the full block).
    pub auc_by_dim: Vec<f64>,
}

/// Computes the masking profile of a generated (block-based) dataset
/// under `detector`: for each planted block and each projection
/// dimensionality, the mean AUC of the block's outliers.
///
/// All `C(block.dim(), k)` projections are evaluated (block dims are
/// ≤ 5, so at most 10 projections per level).
#[must_use]
pub fn masking_profile(generated: &Generated, detector: &dyn Detector) -> Vec<BlockMasking> {
    let mut out = Vec::with_capacity(generated.blocks.len());
    for block in &generated.blocks {
        let outliers: Vec<usize> = generated
            .ground_truth
            .outliers()
            .into_iter()
            .filter(|&p| generated.ground_truth.relevant_for(p).contains(block))
            .collect();
        let features: Vec<usize> = block.iter().collect();
        let m = features.len();
        let mut auc_by_dim = Vec::with_capacity(m);
        for k in 1..=m {
            let mut total = 0.0;
            let mut count = 0usize;
            for combo in combinations(&features, k) {
                let proj = generated.dataset.project(&Subspace::new(combo));
                let scores = detector.score_all(&proj);
                total += auc(&scores, &outliers);
                count += 1;
            }
            auc_by_dim.push(total / count as f64);
        }
        out.push(BlockMasking {
            block: block.clone(),
            auc_by_dim,
        });
    }
    out
}

/// All `k`-element combinations of `items`.
fn combinations(items: &[usize], k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec(
        items: &[usize],
        k: usize,
        start: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in start..items.len() {
            current.push(items[i]);
            rec(items, k, i + 1, current, out);
            current.pop();
        }
    }
    rec(items, k, 0, &mut current, &mut out);
    out
}

/// Renders a masking profile as a fixed-width table.
#[must_use]
pub fn render_profile(detector_name: &str, profile: &[BlockMasking]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "masking profile — {detector_name} (AUC of planted outliers)"
    );
    let _ = writeln!(
        out,
        "{:<18} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "block", "1d", "2d", "3d", "4d", "5d"
    );
    for bm in profile {
        let mut row = format!("{:<18}", bm.block.to_string());
        for k in 0..5 {
            match bm.auc_by_dim.get(k) {
                Some(a) => {
                    let _ = write!(row, " {:>6.2}", a);
                }
                None => {
                    let _ = write!(row, " {:>6}", "·");
                }
            }
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_dataset::gen::hics::{generate_hics, HicsPreset};
    use anomex_detectors::Lof;

    #[test]
    fn auc_basics() {
        // Positives clearly on top.
        assert_eq!(auc(&[1.0, 2.0, 9.0, 8.0], &[2, 3]), 1.0);
        // Positives clearly at the bottom.
        assert_eq!(auc(&[9.0, 8.0, 1.0, 2.0], &[2, 3]), 0.0);
        // Random interleaving near 0.5; exact value for this case:
        let a = auc(&[1.0, 3.0, 2.0, 4.0], &[1, 2]);
        assert!((a - 0.5).abs() < 0.26);
        // Ties count half.
        assert_eq!(auc(&[5.0, 5.0], &[0]), 0.5);
        // Degenerate sides.
        assert_eq!(auc(&[1.0, 2.0], &[]), 0.5);
        assert_eq!(auc(&[1.0, 2.0], &[0, 1]), 0.5);
    }

    #[test]
    fn combinations_count() {
        let items = [1usize, 2, 3, 4];
        assert_eq!(combinations(&items, 2).len(), 6);
        assert_eq!(combinations(&items, 4).len(), 1);
        assert_eq!(combinations(&items, 1).len(), 4);
    }

    #[test]
    fn masking_increases_with_projection_dim() {
        // The defining property of the HiCS testbed: AUC near 0.5 in 1d,
        // near 1.0 in the full block.
        let g = generate_hics(HicsPreset::D14, 42);
        let lof = Lof::new(15).unwrap();
        let profile = masking_profile(&g, &lof);
        assert_eq!(profile.len(), 4);
        for bm in &profile {
            let first = bm.auc_by_dim[0];
            let last = *bm.auc_by_dim.last().unwrap();
            assert!(
                first < 0.75,
                "1d AUC should be maskd, got {first} for {}",
                bm.block
            );
            assert!(
                last > 0.9,
                "full-block AUC should separate, got {last} for {}",
                bm.block
            );
        }
    }

    #[test]
    fn render_contains_blocks() {
        let g = generate_hics(HicsPreset::D14, 1);
        let lof = Lof::new(15).unwrap();
        let profile = masking_profile(&g, &lof);
        let text = render_profile("LOF", &profile);
        assert!(text.contains("LOF"));
        assert!(text.contains("{F0,F1}"));
    }
}
