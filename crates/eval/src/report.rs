//! Fixed-width text reports mirroring the paper's tables and figures.

use crate::datasets::{TestbedDataset, TestbedFamily};
use crate::runner::ResultTable;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Renders Table 1 — characteristics of every testbed dataset.
#[must_use]
pub fn table1(testbeds: &[TestbedDataset]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>6} {:>6} {:>9} {:>8} {:>8} {:>9} {:>9} {:>7}",
        "dataset",
        "rows",
        "feats",
        "outliers",
        "contam%",
        "#relsub",
        "sub/outl",
        "outl/sub",
        "ratio%"
    );
    for tb in testbeds {
        let gt = &tb.ground_truth;
        let n_rel = gt.relevant_subspaces().len();
        let _ = writeln!(
            out,
            "{:<22} {:>6} {:>6} {:>9} {:>8.1} {:>8} {:>9.2} {:>9.2} {:>7.0}",
            tb.name(),
            tb.dataset.n_rows(),
            tb.dataset.n_features(),
            gt.n_outliers(),
            100.0 * gt.n_outliers() as f64 / tb.dataset.n_rows() as f64,
            n_rel,
            gt.mean_subspaces_per_outlier(),
            gt.mean_outliers_per_subspace(),
            (tb.family.relevant_feature_ratio() * 100.0).floor(),
        );
    }
    out
}

/// Renders Figure 8 — dimensionality histogram of relevant subspaces and
/// contamination ratio, per HiCS dataset.
#[must_use]
pub fn fig8(testbeds: &[TestbedDataset]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>5} {:>5} {:>5} {:>5} {:>10}",
        "dataset", "2d", "3d", "4d", "5d", "contam%"
    );
    for tb in testbeds {
        if !matches!(tb.family, TestbedFamily::Hics(_)) {
            continue;
        }
        let h = tb.ground_truth.dimensionality_histogram();
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>5} {:>5} {:>5} {:>10.1}",
            tb.name(),
            h.get(&2).copied().unwrap_or(0),
            h.get(&3).copied().unwrap_or(0),
            h.get(&4).copied().unwrap_or(0),
            h.get(&5).copied().unwrap_or(0),
            100.0 * tb.ground_truth.n_outliers() as f64 / tb.dataset.n_rows() as f64,
        );
    }
    out
}

/// Renders a MAP grid (Figures 9 & 10): one block per dataset, one row
/// per pipeline, one column per explanation dimensionality. Skipped
/// cells print `—`.
#[must_use]
pub fn map_grid(table: &ResultTable) -> String {
    grid(table, |c| {
        if c.skipped {
            "    —".to_string()
        } else {
            format!("{:5.2}", c.map)
        }
    })
}

/// Renders a runtime grid (Figure 11) in seconds.
#[must_use]
pub fn runtime_grid(table: &ResultTable) -> String {
    grid(table, |c| {
        if c.skipped {
            "       —".to_string()
        } else {
            format!("{:8.3}", c.seconds)
        }
    })
}

/// Renders a cache-hit-rate grid: the fraction of subspace-score
/// requests each cell served from the sweep-shared [`ScoreCache`]
/// instead of re-running the detector. Companion to the runtime grid —
/// high late-dimensionality hit rates are where the engine's cache
/// sharing pays off.
///
/// [`ScoreCache`]: anomex_core::cache::ScoreCache
#[must_use]
pub fn cache_grid(table: &ResultTable) -> String {
    grid(table, |c| {
        if c.skipped {
            "       —".to_string()
        } else {
            format!("{:7.1}%", 100.0 * c.cache_hit_rate)
        }
    })
}

fn grid(table: &ResultTable, cell_fmt: impl Fn(&crate::runner::CellResult) -> String) -> String {
    let mut out = String::new();
    let datasets: Vec<String> = {
        let mut seen = Vec::new();
        for c in &table.cells {
            if !seen.contains(&c.dataset) {
                seen.push(c.dataset.clone());
            }
        }
        seen
    };
    for ds in datasets {
        let cells = table.for_dataset(&ds);
        let dims: BTreeSet<usize> = cells.iter().map(|c| c.dim).collect();
        let pipes: Vec<(String, String)> = {
            let mut seen = Vec::new();
            for c in &cells {
                let key = (c.explainer.clone(), c.detector.clone());
                if !seen.contains(&key) {
                    seen.push(key);
                }
            }
            seen
        };
        let _ = writeln!(out, "== {ds} ==");
        let mut header = format!("{:<22}", "pipeline");
        for d in &dims {
            let _ = write!(header, " {:>8}", format!("{d}d"));
        }
        let _ = writeln!(out, "{header}");
        for (expl, det) in pipes {
            let mut row = format!("{:<22}", format!("{expl}+{det}"));
            for d in &dims {
                let cell = cells
                    .iter()
                    .find(|c| c.explainer == expl && c.detector == det && c.dim == *d);
                match cell {
                    Some(c) => {
                        let _ = write!(row, " {:>8}", cell_fmt(c));
                    }
                    None => {
                        let _ = write!(row, " {:>8}", "·");
                    }
                }
            }
            let _ = writeln!(out, "{row}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use crate::runner::CellResult;

    fn cell(ds: &str, det: &str, expl: &str, dim: usize, map: f64, skipped: bool) -> CellResult {
        CellResult {
            dataset: ds.into(),
            detector: det.into(),
            explainer: expl.into(),
            dim,
            map,
            mean_recall: map,
            seconds: 1.5,
            evaluations: 10,
            cache_hits: 30,
            cache_hit_rate: 0.75,
            peak_cache_entries: 10,
            n_points: 5,
            skipped,
            skip_reason: None,
        }
    }

    #[test]
    fn map_grid_layout() {
        let mut t = ResultTable::new("fig9");
        t.cells.push(cell("DS-A", "LOF", "Beam_FX", 2, 0.75, false));
        t.cells.push(cell("DS-A", "LOF", "Beam_FX", 3, 0.5, false));
        t.cells.push(cell("DS-A", "LOF", "RefOut", 2, 1.0, false));
        t.cells.push(cell("DS-A", "LOF", "RefOut", 3, 0.0, true));
        let s = map_grid(&t);
        assert!(s.contains("== DS-A =="));
        assert!(s.contains("Beam_FX+LOF"));
        assert!(s.contains("0.75"));
        assert!(s.contains('—'), "skipped cell must print a dash:\n{s}");
        // Two dim columns.
        assert!(s.contains("2d") && s.contains("3d"));
    }

    #[test]
    fn runtime_grid_prints_seconds() {
        let mut t = ResultTable::new("fig11");
        t.cells.push(cell("DS-A", "LOF", "LookOut", 2, 0.5, false));
        let s = runtime_grid(&t);
        assert!(s.contains("1.500"), "{s}");
    }

    #[test]
    fn cache_grid_prints_hit_rates() {
        let mut t = ResultTable::new("fig11");
        t.cells.push(cell("DS-A", "LOF", "LookOut", 2, 0.5, false));
        t.cells.push(cell("DS-A", "LOF", "LookOut", 3, 0.0, true));
        let s = cache_grid(&t);
        assert!(s.contains("75.0%"), "{s}");
        assert!(s.contains('—'), "skipped cell must print a dash:\n{s}");
    }
}
