//! The eight testbed datasets (paper §3.2, Table 1), ready to evaluate:
//! five HiCS-family subspace-outlier datasets and three full-space-outlier
//! datasets with exhaustive-LOF-derived ground truth.

use crate::ground_truth::derive_fullspace_ground_truth;
use anomex_dataset::gen::fullspace::{generate_fullspace_with_outliers, FullSpacePreset};
use anomex_dataset::gen::hics::{generate_hics, HicsPreset};
use anomex_dataset::{Dataset, GroundTruth};

/// Which testbed family a dataset belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestbedFamily {
    /// HiCS-style subspace outliers (planted ground truth).
    Hics(HicsPreset),
    /// Full-space outliers (ground truth derived by exhaustive LOF).
    FullSpace(FullSpacePreset),
    /// A caller-supplied dataset wrapped via [`TestbedDataset::from_parts`]
    /// (regression fixtures, external data). Not part of the paper's
    /// eight, so [`TestbedFamily::all`] never lists it.
    Custom(CustomFamily),
}

/// Static description of a [`TestbedFamily::Custom`] dataset. All fields
/// are `'static` so the family stays `Copy + Eq + Hash` like the presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CustomFamily {
    /// Display name.
    pub name: &'static str,
    /// Number of features.
    pub n_features: usize,
    /// Explanation dimensionalities to evaluate.
    pub dims: &'static [usize],
}

impl TestbedFamily {
    /// All eight paper datasets: HiCS 14–100d then the A/B/C full-space
    /// datasets.
    #[must_use]
    pub fn all() -> Vec<TestbedFamily> {
        let mut v: Vec<TestbedFamily> = HicsPreset::all()
            .into_iter()
            .map(TestbedFamily::Hics)
            .collect();
        v.extend(
            FullSpacePreset::all()
                .into_iter()
                .map(TestbedFamily::FullSpace),
        );
        v
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TestbedFamily::Hics(p) => p.name(),
            TestbedFamily::FullSpace(p) => p.name(),
            TestbedFamily::Custom(c) => c.name,
        }
    }

    /// Number of features.
    #[must_use]
    pub fn n_features(self) -> usize {
        match self {
            TestbedFamily::Hics(p) => p.n_features(),
            TestbedFamily::FullSpace(p) => p.n_features(),
            TestbedFamily::Custom(c) => c.n_features,
        }
    }

    /// The explanation dimensionalities the paper evaluates on this
    /// dataset: 2–5d for the synthetic family, 2–4d for the full-space
    /// family, caller-declared for custom datasets.
    #[must_use]
    pub fn explanation_dims(self) -> Vec<usize> {
        match self {
            TestbedFamily::Hics(_) => vec![2, 3, 4, 5],
            TestbedFamily::FullSpace(_) => vec![2, 3, 4],
            TestbedFamily::Custom(c) => c.dims.to_vec(),
        }
    }

    /// The paper's "Relevant Features Ratio" (Table 1 / Table 2): the
    /// maximal explanation dimensionality over the dataset
    /// dimensionality for the HiCS family, 100 % for full-space outliers.
    #[must_use]
    pub fn relevant_feature_ratio(self) -> f64 {
        match self {
            TestbedFamily::Hics(p) => 5.0 / p.n_features() as f64,
            TestbedFamily::FullSpace(_) => 1.0,
            TestbedFamily::Custom(c) => {
                let max_dim = c.dims.iter().copied().max().unwrap_or(c.n_features);
                max_dim as f64 / c.n_features.max(1) as f64
            }
        }
    }
}

/// A testbed dataset with its ground truth.
#[derive(Debug, Clone)]
pub struct TestbedDataset {
    /// Which paper dataset this is.
    pub family: TestbedFamily,
    /// The data matrix.
    pub dataset: Dataset,
    /// Points of interest and their relevant subspaces.
    pub ground_truth: GroundTruth,
}

impl TestbedDataset {
    /// Builds one testbed dataset. For the full-space family this runs
    /// the exhaustive-LOF ground-truth derivation over `gt_dims`
    /// (the paper uses 2–4d; pass fewer dims to trade fidelity for
    /// speed).
    #[must_use]
    pub fn build(family: TestbedFamily, seed: u64, gt_dims: &[usize]) -> Self {
        match family {
            TestbedFamily::Hics(p) => {
                let g = generate_hics(p, seed);
                TestbedDataset {
                    family,
                    dataset: g.dataset,
                    ground_truth: g.ground_truth,
                }
            }
            TestbedFamily::FullSpace(p) => {
                let (dataset, outliers) = generate_fullspace_with_outliers(p, seed);
                let ground_truth = derive_fullspace_ground_truth(&dataset, &outliers, gt_dims);
                TestbedDataset {
                    family,
                    dataset,
                    ground_truth,
                }
            }
            TestbedFamily::Custom(c) => panic!(
                "custom testbed '{}' is built via TestbedDataset::from_parts",
                c.name
            ),
        }
    }

    /// Wraps a caller-supplied dataset and ground truth as a testbed —
    /// the entry point for regression fixtures and external data that
    /// should run through the same grid/report machinery as the paper's
    /// datasets.
    ///
    /// # Panics
    /// Panics when the dataset's feature count disagrees with the
    /// family's declared `n_features`.
    #[must_use]
    pub fn from_parts(family: CustomFamily, dataset: Dataset, ground_truth: GroundTruth) -> Self {
        assert_eq!(
            dataset.n_features(),
            family.n_features,
            "custom family '{}' declares {} features but the dataset has {}",
            family.name,
            family.n_features,
            dataset.n_features()
        );
        TestbedDataset {
            family: TestbedFamily::Custom(family),
            dataset,
            ground_truth,
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.family.name()
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn families_enumerate_all_eight() {
        let all = TestbedFamily::all();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0].name(), "HiCS-14d");
        assert_eq!(all[7].name(), "Electricity-like (C)");
    }

    #[test]
    fn relevant_feature_ratios_match_table1() {
        // The paper floors the percentages: 35, 21, 12, 7, 5, then 100.
        let ratios: Vec<i64> = TestbedFamily::all()
            .into_iter()
            .map(|f| (f.relevant_feature_ratio() * 100.0).floor() as i64)
            .collect();
        assert_eq!(ratios, vec![35, 21, 12, 7, 5, 100, 100, 100]);
    }

    #[test]
    fn hics_build_has_planted_truth() {
        let t = TestbedDataset::build(TestbedFamily::Hics(HicsPreset::D14), 1, &[]);
        assert_eq!(t.dataset.n_features(), 14);
        assert_eq!(t.ground_truth.n_outliers(), 20);
    }

    #[test]
    fn custom_family_wraps_external_data() {
        use anomex_dataset::Subspace;
        let fam = CustomFamily {
            name: "fixture-3d",
            n_features: 3,
            dims: &[2],
        };
        let ds = Dataset::from_rows(vec![vec![0.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]]).unwrap();
        let mut gt = GroundTruth::new();
        gt.add(1, Subspace::new([0usize, 2]));
        let tb = TestbedDataset::from_parts(fam, ds, gt);
        assert_eq!(tb.name(), "fixture-3d");
        assert_eq!(tb.family.n_features(), 3);
        assert_eq!(tb.family.explanation_dims(), vec![2]);
        assert!((tb.family.relevant_feature_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(tb.ground_truth.n_outliers(), 1);
        // Custom families are fixtures, not paper datasets.
        assert!(!TestbedFamily::all()
            .iter()
            .any(|f| matches!(f, TestbedFamily::Custom(_))));
    }

    #[test]
    #[should_panic(expected = "from_parts")]
    fn custom_family_rejects_build() {
        let fam = CustomFamily {
            name: "fixture-3d",
            n_features: 3,
            dims: &[2],
        };
        let _ = TestbedDataset::build(TestbedFamily::Custom(fam), 1, &[]);
    }

    #[test]
    fn fullspace_build_derives_truth() {
        let t = TestbedDataset::build(TestbedFamily::FullSpace(FullSpacePreset::BreastA), 1, &[2]);
        assert_eq!(t.ground_truth.n_outliers(), 20);
        // Each outlier got exactly one 2d subspace.
        for p in t.ground_truth.outliers() {
            let rels = t.ground_truth.relevant_for(p);
            assert_eq!(rels.len(), 1);
            assert_eq!(rels[0].dim(), 2);
        }
    }
}
