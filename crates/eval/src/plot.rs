//! Terminal scatter plots of 2d subspace explanations.
//!
//! LookOut's original purpose was *pictorial* explanation — handing the
//! analyst a small set of 2d plots in which the outliers visibly stand
//! out (paper §2.3). This module renders exactly those plots as ASCII,
//! so the examples and the CLI can show the explanation rather than
//! just name it.

use anomex_dataset::{Dataset, Subspace};

/// Character used for inlier points.
const INLIER: char = '·';
/// Character used for highlighted (outlier) points.
const OUTLIER: char = '#';

/// Renders the projection of `dataset` onto a 2-feature `subspace` as an
/// ASCII scatter plot of `width × height` cells, with `highlight` rows
/// drawn as `#` over the inlier cloud.
///
/// # Panics
/// Panics unless the subspace has exactly 2 features, both in range,
/// and `width`/`height` are at least 2.
#[must_use]
pub fn scatter(
    dataset: &Dataset,
    subspace: &Subspace,
    highlight: &[usize],
    width: usize,
    height: usize,
) -> String {
    assert_eq!(subspace.dim(), 2, "scatter plots need exactly 2 features");
    assert!(width >= 2 && height >= 2, "plot must be at least 2x2");
    let fs: Vec<usize> = subspace.iter().collect();
    let (fx, fy) = (fs[0], fs[1]);
    let xs = dataset.column(fx);
    let ys = dataset.column(fy);

    let (x_lo, x_hi) = min_max(xs);
    let (y_lo, y_hi) = min_max(ys);
    let cell = |v: f64, lo: f64, hi: f64, n: usize| -> usize {
        if hi <= lo {
            return 0;
        }
        (((v - lo) / (hi - lo) * n as f64) as usize).min(n - 1)
    };

    let mut grid = vec![vec![' '; width]; height];
    for i in 0..dataset.n_rows() {
        if highlight.contains(&i) {
            continue; // drawn after, so outliers are never hidden
        }
        let cx = cell(xs[i], x_lo, x_hi, width);
        let cy = cell(ys[i], y_lo, y_hi, height);
        grid[height - 1 - cy][cx] = INLIER;
    }
    for &i in highlight {
        let cx = cell(xs[i], x_lo, x_hi, width);
        let cy = cell(ys[i], y_lo, y_hi, height);
        grid[height - 1 - cy][cx] = OUTLIER;
    }

    let names = dataset.feature_names();
    let mut out = String::new();
    out.push_str(&format!("{} (y) vs {} (x)\n", names[fy], names[fx]));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push('\n');
    out
}

fn min_max(xs: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    fn diagonal_with_outlier() -> Dataset {
        let mut rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = i as f64 / 50.0;
                vec![t, t, 0.5]
            })
            .collect();
        rows.push(vec![0.1, 0.9, 0.5]); // off-diagonal
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn outlier_marker_present_and_off_diagonal() {
        let ds = diagonal_with_outlier();
        let plot = scatter(&ds, &Subspace::new([0usize, 1]), &[50], 20, 10);
        assert!(plot.contains('#'));
        assert!(plot.contains('·'));
        // Outlier at (0.1, 0.9): top-left region → '#" appears in an
        // early row, left half.
        let lines: Vec<&str> = plot.lines().collect();
        let hash_line = lines.iter().position(|l| l.contains('#')).unwrap();
        assert!(
            hash_line <= 3,
            "outlier should render near the top: line {hash_line}"
        );
        assert!(lines[hash_line].find('#').unwrap() < 12);
    }

    #[test]
    fn header_names_axes() {
        let ds = diagonal_with_outlier()
            .with_names(vec!["a", "b", "c"])
            .unwrap();
        let plot = scatter(&ds, &Subspace::new([0usize, 1]), &[], 10, 5);
        assert!(plot.starts_with("b (y) vs a (x)"));
    }

    #[test]
    fn dimensions_respected() {
        let ds = diagonal_with_outlier();
        let plot = scatter(&ds, &Subspace::new([0usize, 2]), &[], 30, 7);
        // Header + 7 rows + bottom border.
        assert_eq!(plot.lines().count(), 9);
        assert!(plot.lines().nth(1).unwrap().len() == 31); // '|' + 30 cells
    }

    #[test]
    fn constant_feature_does_not_crash() {
        let ds = diagonal_with_outlier();
        let plot = scatter(&ds, &Subspace::new([1usize, 2]), &[0], 10, 5);
        assert!(plot.contains('#'));
    }

    #[test]
    #[should_panic(expected = "exactly 2 features")]
    fn rejects_non_2d_subspace() {
        let ds = diagonal_with_outlier();
        let _ = scatter(&ds, &Subspace::new([0usize, 1, 2]), &[], 10, 5);
    }
}
