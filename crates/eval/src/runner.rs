//! Executes pipelines against testbed datasets and collects the
//! serializable result cells behind every figure and table.

use crate::datasets::TestbedDataset;
use crate::experiment::ExperimentConfig;
use crate::metrics;
use anomex_core::pipeline::Pipeline;
use serde::{Deserialize, Serialize};

/// One (dataset × pipeline × explanation-dimensionality) measurement —
/// a single point of a Figure 9/10 curve or Figure 11 runtime curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Dataset display name.
    pub dataset: String,
    /// Detector display name.
    pub detector: String,
    /// Explainer display name.
    pub explainer: String,
    /// Explanation dimensionality.
    pub dim: usize,
    /// Mean Average Precision (Eq. 3) over the evaluated points.
    pub map: f64,
    /// Mean Recall over the evaluated points.
    pub mean_recall: f64,
    /// Wall-clock seconds of the pipeline run.
    pub seconds: f64,
    /// Detector invocations (subspace evaluations).
    pub evaluations: usize,
    /// Number of points whose explanations were evaluated.
    pub n_points: usize,
    /// Whether the cell was skipped (budget exceeded); metrics are 0.
    pub skipped: bool,
    /// Reason for skipping, when applicable.
    pub skip_reason: Option<String>,
}

/// A named collection of cells (one experiment).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultTable {
    /// Experiment identifier (`fig9`, `fig10`, ...).
    pub experiment: String,
    /// All measured/skipped cells.
    pub cells: Vec<CellResult>,
}

impl ResultTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new(experiment: &str) -> Self {
        ResultTable {
            experiment: experiment.to_string(),
            cells: Vec::new(),
        }
    }

    /// Serializes to pretty JSON.
    ///
    /// # Panics
    /// Never in practice — the types are plain data.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plain data serializes")
    }

    /// Parses a table back from JSON.
    ///
    /// # Errors
    /// Propagates `serde_json` errors on malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// The cells of one dataset, in insertion order.
    #[must_use]
    pub fn for_dataset(&self, dataset: &str) -> Vec<&CellResult> {
        self.cells.iter().filter(|c| c.dataset == dataset).collect()
    }
}

/// Selects the points of interest of one cell: the ground-truth outliers
/// explained at the target dimensionality (§3.3 evaluates exactly this
/// population), deterministically capped at `max_pois` when configured.
#[must_use]
pub fn points_of_interest(
    testbed: &TestbedDataset,
    dim: usize,
    cfg: &ExperimentConfig,
) -> Vec<usize> {
    let mut pois = testbed.ground_truth.points_explained_at_dim(dim);
    if let Some(cap) = cfg.max_pois {
        pois.truncate(cap);
    }
    pois
}

/// Runs one pipeline on one dataset at one explanation dimensionality,
/// or records a skip when the estimated cost exceeds the budget.
#[must_use]
pub fn run_cell(
    testbed: &TestbedDataset,
    pipeline: &Pipeline,
    dim: usize,
    cfg: &ExperimentConfig,
) -> CellResult {
    let pois = points_of_interest(testbed, dim, cfg);
    if pois.is_empty() {
        return CellResult {
            dataset: testbed.name().to_string(),
            detector: pipeline.detector_name().to_string(),
            explainer: pipeline.explainer_name().to_string(),
            dim,
            map: 0.0,
            mean_recall: 0.0,
            seconds: 0.0,
            evaluations: 0,
            n_points: 0,
            skipped: true,
            skip_reason: Some("no points explained at this dimensionality".into()),
        };
    }
    let estimate = cfg.estimated_evaluations(
        pipeline.explainer_name(),
        testbed.dataset.n_features(),
        dim,
        pois.len(),
    );
    if estimate > cfg.eval_budget as u128 {
        return CellResult {
            dataset: testbed.name().to_string(),
            detector: pipeline.detector_name().to_string(),
            explainer: pipeline.explainer_name().to_string(),
            dim,
            map: 0.0,
            mean_recall: 0.0,
            seconds: 0.0,
            evaluations: 0,
            n_points: 0,
            skipped: true,
            skip_reason: Some(format!(
                "estimated {estimate} evaluations exceed budget {}",
                cfg.eval_budget
            )),
        };
    }

    let output = pipeline.run(&testbed.dataset, &pois, dim);

    // Evaluate over the points explained at this dimensionality (§3.3).
    let per_point: Vec<_> = pois
        .iter()
        .filter_map(|&p| {
            let rel = testbed.ground_truth.relevant_for_at_dim(p, dim);
            if rel.is_empty() {
                None
            } else {
                Some((rel, &output.explanations[&p]))
            }
        })
        .collect();

    CellResult {
        dataset: testbed.name().to_string(),
        detector: pipeline.detector_name().to_string(),
        explainer: pipeline.explainer_name().to_string(),
        dim,
        map: metrics::map(&per_point),
        mean_recall: metrics::mean_recall(&per_point),
        seconds: output.elapsed.as_secs_f64(),
        evaluations: output.subspace_evaluations,
        n_points: per_point.len(),
        skipped: false,
        skip_reason: None,
    }
}

/// Runs a whole pipeline family (Figure 9 or 10) over the given testbeds
/// and dims.
#[must_use]
pub fn run_grid(
    experiment: &str,
    testbeds: &[TestbedDataset],
    pipelines: &[Pipeline],
    cfg: &ExperimentConfig,
) -> ResultTable {
    let mut table = ResultTable::new(experiment);
    for tb in testbeds {
        for dim in tb.family.explanation_dims() {
            for pipe in pipelines {
                let cell = run_cell(tb, pipe, dim, cfg);
                eprintln!(
                    "#   [{experiment}] {} {} {dim}d: {}",
                    tb.name(),
                    pipe.label(),
                    if cell.skipped {
                        "skipped".to_string()
                    } else {
                        format!("map={:.2} in {:.1}s", cell.map, cell.seconds)
                    }
                );
                table.cells.push(cell);
            }
        }
    }
    table
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use crate::datasets::{TestbedDataset, TestbedFamily};
    use anomex_dataset::gen::hics::HicsPreset;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig::fast(7)
    }

    fn d14() -> TestbedDataset {
        TestbedDataset::build(TestbedFamily::Hics(HicsPreset::D14), 7, &[])
    }

    #[test]
    fn run_cell_produces_metrics() {
        let tb = d14();
        let cfg = tiny_cfg();
        let pipes = cfg.point_pipelines();
        let cell = run_cell(&tb, &pipes[0], 2, &cfg); // Beam + LOF
        assert!(!cell.skipped);
        assert!(cell.n_points > 0);
        assert!((0.0..=1.0).contains(&cell.map));
        assert!((0.0..=1.0).contains(&cell.mean_recall));
        assert!(cell.seconds > 0.0);
        assert!(cell.evaluations > 0);
        assert_eq!(cell.dataset, "HiCS-14d");
    }

    #[test]
    fn budget_exceeded_cells_are_skipped() {
        let tb = d14();
        let mut cfg = tiny_cfg();
        cfg.eval_budget = 1;
        let pipes = cfg.point_pipelines();
        let cell = run_cell(&tb, &pipes[0], 2, &cfg);
        assert!(cell.skipped);
        assert!(cell.skip_reason.is_some());
        assert_eq!(cell.map, 0.0);
    }

    #[test]
    fn poi_cap_and_dim_filter_are_honoured() {
        let tb = d14();
        let mut cfg = tiny_cfg();
        // 14d: one block per dimensionality, 5 outliers each.
        cfg.max_pois = None;
        assert_eq!(points_of_interest(&tb, 2, &cfg).len(), 5);
        assert_eq!(points_of_interest(&tb, 5, &cfg).len(), 5);
        cfg.max_pois = Some(3);
        assert_eq!(points_of_interest(&tb, 2, &cfg).len(), 3);
        // No points are explained at 6d.
        assert!(points_of_interest(&tb, 6, &cfg).is_empty());
    }

    #[test]
    fn cell_with_no_points_at_dim_is_skipped() {
        let tb = d14();
        let cfg = tiny_cfg();
        let pipes = cfg.point_pipelines();
        let cell = run_cell(&tb, &pipes[0], 6, &cfg);
        assert!(cell.skipped);
        assert_eq!(cell.n_points, 0);
    }

    #[test]
    fn json_round_trip() {
        let tb = d14();
        let cfg = tiny_cfg();
        let pipes = cfg.point_pipelines();
        let mut table = ResultTable::new("fig9");
        table.cells.push(run_cell(&tb, &pipes[0], 2, &cfg));
        let json = table.to_json();
        let back = ResultTable::from_json(&json).unwrap();
        assert_eq!(back, table);
        assert_eq!(back.for_dataset("HiCS-14d").len(), 1);
    }
}
