//! Executes pipelines against testbed datasets and collects the
//! serializable result cells behind every figure and table.

use crate::datasets::TestbedDataset;
use crate::experiment::ExperimentConfig;
use crate::metrics;
use anomex_core::cache::ScoreCache;
use anomex_core::engine::{ExplanationEngine, RunSpec};
use anomex_core::pipeline::Pipeline;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// Process-wide grid meters: cells actually measured vs skipped (budget
/// or empty point set). Logical-sequence spans only — wall time lives in
/// each cell's `seconds` field.
fn obs_cells() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("eval.grid.cells"))
}

fn obs_cells_skipped() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("eval.grid.cells_skipped"))
}

/// One (dataset × pipeline × explanation-dimensionality) measurement —
/// a single point of a Figure 9/10 curve or Figure 11 runtime curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Dataset display name.
    pub dataset: String,
    /// Detector display name.
    pub detector: String,
    /// Explainer display name.
    pub explainer: String,
    /// Explanation dimensionality.
    pub dim: usize,
    /// Mean Average Precision (Eq. 3) over the evaluated points.
    pub map: f64,
    /// Mean Recall over the evaluated points.
    pub mean_recall: f64,
    /// Wall-clock seconds of the pipeline run.
    pub seconds: f64,
    /// Detector invocations (subspace evaluations).
    pub evaluations: usize,
    /// Score-cache hits during the run — including entries left warm by
    /// earlier dimensionalities of the same engine sweep.
    #[serde(default)]
    pub cache_hits: usize,
    /// Fraction of subspace-score requests served from cache, in `[0,1]`.
    #[serde(default)]
    pub cache_hit_rate: f64,
    /// Peak score vectors resident in the engine's cache.
    #[serde(default)]
    pub peak_cache_entries: usize,
    /// Number of points whose explanations were evaluated.
    pub n_points: usize,
    /// Whether the cell was skipped (budget exceeded); metrics are 0.
    pub skipped: bool,
    /// Reason for skipping, when applicable.
    pub skip_reason: Option<String>,
}

/// A named collection of cells (one experiment).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultTable {
    /// Experiment identifier (`fig9`, `fig10`, ...).
    pub experiment: String,
    /// All measured/skipped cells.
    pub cells: Vec<CellResult>,
}

impl ResultTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new(experiment: &str) -> Self {
        ResultTable {
            experiment: experiment.to_string(),
            cells: Vec::new(),
        }
    }

    /// Serializes to pretty JSON.
    ///
    /// # Panics
    /// Never in practice — the types are plain data.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plain data serializes")
    }

    /// Parses a table back from JSON.
    ///
    /// # Errors
    /// Propagates `serde_json` errors on malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// The cells of one dataset, in insertion order.
    #[must_use]
    pub fn for_dataset(&self, dataset: &str) -> Vec<&CellResult> {
        self.cells.iter().filter(|c| c.dataset == dataset).collect()
    }
}

/// Selects the points of interest of one cell: the ground-truth outliers
/// explained at the target dimensionality (§3.3 evaluates exactly this
/// population), deterministically capped at `max_pois` when configured.
#[must_use]
pub fn points_of_interest(
    testbed: &TestbedDataset,
    dim: usize,
    cfg: &ExperimentConfig,
) -> Vec<usize> {
    let mut pois = testbed.ground_truth.points_explained_at_dim(dim);
    if let Some(cap) = cfg.max_pois {
        pois.truncate(cap);
    }
    pois
}

fn skipped_cell(
    testbed: &TestbedDataset,
    pipeline: &Pipeline,
    dim: usize,
    reason: String,
) -> CellResult {
    CellResult {
        dataset: testbed.name().to_string(),
        detector: pipeline.detector_name().to_string(),
        explainer: pipeline.explainer_name().to_string(),
        dim,
        map: 0.0,
        mean_recall: 0.0,
        seconds: 0.0,
        evaluations: 0,
        cache_hits: 0,
        cache_hit_rate: 0.0,
        peak_cache_entries: 0,
        n_points: 0,
        skipped: true,
        skip_reason: Some(reason),
    }
}

/// Runs one pipeline on one dataset at one explanation dimensionality
/// with a throwaway engine (cold cache). The grid runner uses
/// [`run_cell_with_engine`] instead, so a whole dimensionality sweep
/// shares one warm cache.
#[must_use]
pub fn run_cell(
    testbed: &TestbedDataset,
    pipeline: &Pipeline,
    dim: usize,
    cfg: &ExperimentConfig,
) -> CellResult {
    let engine = pipeline.engine(&testbed.dataset);
    run_cell_with_engine(testbed, pipeline, &engine, dim, cfg)
}

/// Runs one cell through an existing engine, or records a skip when the
/// estimated cost exceeds the budget. The engine's cache persists across
/// calls, which is exactly the point: later dimensionalities (and later
/// pipelines pairing the same detector) are served from warm entries,
/// and the cell's `RunStats`-derived telemetry records the payoff.
#[must_use]
pub fn run_cell_with_engine(
    testbed: &TestbedDataset,
    pipeline: &Pipeline,
    engine: &ExplanationEngine<'_>,
    dim: usize,
    cfg: &ExperimentConfig,
) -> CellResult {
    let _cell_span = anomex_obs::span!("eval.grid.cell", dim = dim);
    let pois = points_of_interest(testbed, dim, cfg);
    if pois.is_empty() {
        obs_cells_skipped().incr();
        return skipped_cell(
            testbed,
            pipeline,
            dim,
            "no points explained at this dimensionality".into(),
        );
    }
    let estimate = cfg.estimated_evaluations(
        pipeline.explainer_name(),
        testbed.dataset.n_features(),
        dim,
        pois.len(),
    );
    if estimate > cfg.eval_budget as u128 {
        obs_cells_skipped().incr();
        return skipped_cell(
            testbed,
            pipeline,
            dim,
            format!(
                "estimated {estimate} evaluations exceed budget {}",
                cfg.eval_budget
            ),
        );
    }
    obs_cells().incr();

    let run = engine.run(pipeline.explainer(), &RunSpec::new(pois.as_slice(), [dim]));
    let pass = run.into_single();

    // Evaluate over the points explained at this dimensionality (§3.3).
    let per_point: Vec<_> = pois
        .iter()
        .filter_map(|&p| {
            let rel = testbed.ground_truth.relevant_for_at_dim(p, dim);
            if rel.is_empty() {
                None
            } else {
                Some((rel, &pass.explanations[&p]))
            }
        })
        .collect();

    CellResult {
        dataset: testbed.name().to_string(),
        detector: pipeline.detector_name().to_string(),
        explainer: pipeline.explainer_name().to_string(),
        dim,
        map: metrics::map(&per_point),
        mean_recall: metrics::mean_recall(&per_point),
        seconds: pass.stats.elapsed.as_secs_f64(),
        evaluations: pass.stats.evaluations,
        cache_hits: pass.stats.cache_hits,
        cache_hit_rate: pass.stats.hit_rate(),
        peak_cache_entries: pass.stats.peak_cache_entries,
        n_points: per_point.len(),
        skipped: false,
        skip_reason: None,
    }
}

/// Runs a whole pipeline family (Figure 9 or 10) over the given testbeds
/// and dims.
///
/// Per dataset, one [`ScoreCache`] is kept per *detector* and shared by
/// every pipeline pairing that detector and every explanation
/// dimensionality — so a Figure 9/10/11 sweep never re-runs the detector
/// on a subspace any earlier cell already scored. Rankings and MAP are
/// unchanged (cached score vectors are bit-identical to recomputed
/// ones); only the redundant detector work disappears.
#[must_use]
pub fn run_grid(
    experiment: &str,
    testbeds: &[TestbedDataset],
    pipelines: &[Pipeline],
    cfg: &ExperimentConfig,
) -> ResultTable {
    let mut table = ResultTable::new(experiment);
    for tb in testbeds {
        // BTreeMap keeps any future iteration over the per-detector
        // caches deterministic (report rows must not depend on hasher
        // order); lookup cost is irrelevant at a handful of detectors.
        let mut caches: BTreeMap<&'static str, Arc<ScoreCache>> = BTreeMap::new();
        for pipe in pipelines {
            let cache = Arc::clone(
                caches
                    .entry(pipe.detector_name())
                    .or_insert_with(|| Arc::new(cfg.score_cache())),
            );
            let engine = pipe.engine_with_cache(&tb.dataset, cache);
            for dim in tb.family.explanation_dims() {
                let cell = run_cell_with_engine(tb, pipe, &engine, dim, cfg);
                eprintln!(
                    "#   [{experiment}] {} {} {dim}d: {}",
                    tb.name(),
                    pipe.label(),
                    if cell.skipped {
                        "skipped".to_string()
                    } else {
                        format!(
                            "map={:.2} in {:.1}s ({:.0}% cached)",
                            cell.map,
                            cell.seconds,
                            100.0 * cell.cache_hit_rate
                        )
                    }
                );
                table.cells.push(cell);
            }
        }
    }
    table
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use crate::datasets::{TestbedDataset, TestbedFamily};
    use anomex_dataset::gen::hics::HicsPreset;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig::fast(7)
    }

    fn d14() -> TestbedDataset {
        TestbedDataset::build(TestbedFamily::Hics(HicsPreset::D14), 7, &[])
    }

    #[test]
    fn run_cell_produces_metrics() {
        let tb = d14();
        let cfg = tiny_cfg();
        let pipes = cfg.point_pipelines();
        let cell = run_cell(&tb, &pipes[0], 2, &cfg); // Beam + LOF
        assert!(!cell.skipped);
        assert!(cell.n_points > 0);
        assert!((0.0..=1.0).contains(&cell.map));
        assert!((0.0..=1.0).contains(&cell.mean_recall));
        assert!(cell.seconds > 0.0);
        assert!(cell.evaluations > 0);
        assert_eq!(cell.dataset, "HiCS-14d");
    }

    #[test]
    fn budget_exceeded_cells_are_skipped() {
        let tb = d14();
        let mut cfg = tiny_cfg();
        cfg.eval_budget = 1;
        let pipes = cfg.point_pipelines();
        let cell = run_cell(&tb, &pipes[0], 2, &cfg);
        assert!(cell.skipped);
        assert!(cell.skip_reason.is_some());
        assert_eq!(cell.map, 0.0);
    }

    #[test]
    fn poi_cap_and_dim_filter_are_honoured() {
        let tb = d14();
        let mut cfg = tiny_cfg();
        // 14d: one block per dimensionality, 5 outliers each.
        cfg.max_pois = None;
        assert_eq!(points_of_interest(&tb, 2, &cfg).len(), 5);
        assert_eq!(points_of_interest(&tb, 5, &cfg).len(), 5);
        cfg.max_pois = Some(3);
        assert_eq!(points_of_interest(&tb, 2, &cfg).len(), 3);
        // No points are explained at 6d.
        assert!(points_of_interest(&tb, 6, &cfg).is_empty());
    }

    #[test]
    fn cell_with_no_points_at_dim_is_skipped() {
        let tb = d14();
        let cfg = tiny_cfg();
        let pipes = cfg.point_pipelines();
        let cell = run_cell(&tb, &pipes[0], 6, &cfg);
        assert!(cell.skipped);
        assert_eq!(cell.n_points, 0);
    }

    #[test]
    fn json_round_trip() {
        let tb = d14();
        let cfg = tiny_cfg();
        let pipes = cfg.point_pipelines();
        let mut table = ResultTable::new("fig9");
        table.cells.push(run_cell(&tb, &pipes[0], 2, &cfg));
        let json = table.to_json();
        let back = ResultTable::from_json(&json).unwrap();
        assert_eq!(back, table);
        assert_eq!(back.for_dataset("HiCS-14d").len(), 1);
    }
}
