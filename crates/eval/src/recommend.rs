//! Recommender validation: does profile-driven pipeline selection beat
//! the average fixed pipeline on the synthetic testbed?
//!
//! The recommender (`anomex_spec::recommend`) picks one pipeline family
//! per dataset from its [`profile`](anomex_core::profile_dataset). This
//! module scores that choice against the measured grid: each dataset's
//! recommended pipeline is looked up in a [`ResultTable`] produced by
//! the ordinary fixed grid (same budget-scaled hyper-parameters for
//! every family, so the comparison is apples to apples), and the
//! recommender's mean MAP is compared with the mean over *all* fixed
//! pipelines — the score a user expecting one-size-fits-all would get
//! in expectation.

use crate::datasets::TestbedDataset;
use crate::runner::ResultTable;
use anomex_core::profile_dataset;
use anomex_spec::{
    recommend, DetectorSpec, ExplainerSpec, PipelineSpec, RecommendTask, Recommendation,
};

/// The display name the eval reports use for a detector spec.
#[must_use]
pub fn detector_display(spec: &DetectorSpec) -> &'static str {
    match spec {
        DetectorSpec::Lof { .. } => "LOF",
        DetectorSpec::FastAbod { .. } => "FastABOD",
        DetectorSpec::KnnDist { .. } => "KnnDist",
        DetectorSpec::IsolationForest { .. } => "iForest",
    }
}

/// The display name the eval reports use for an explainer spec.
#[must_use]
pub fn explainer_display(spec: &ExplainerSpec) -> &'static str {
    match spec {
        ExplainerSpec::Beam { fixed_dim, .. } => {
            if *fixed_dim {
                "Beam_FX"
            } else {
                "Beam"
            }
        }
        ExplainerSpec::RefOut { .. } => "RefOut",
        ExplainerSpec::LookOut { .. } => "LookOut",
        ExplainerSpec::Hics { fixed_dim, .. } => {
            if *fixed_dim {
                "HiCS_FX"
            } else {
                "HiCS"
            }
        }
    }
}

/// The `"Explainer+Detector"` report label of a pipeline spec —
/// identical to [`anomex_core::Pipeline::label`] of the built pipeline.
#[must_use]
pub fn spec_label(spec: &PipelineSpec) -> String {
    format!(
        "{}+{}",
        explainer_display(&spec.explainer),
        detector_display(&spec.detector)
    )
}

/// One dataset's outcome: what was recommended and how it scored.
#[derive(Debug, Clone)]
pub struct RecommenderRow {
    /// Dataset display name.
    pub dataset: String,
    /// The full recommendation (spec + reasoning trace + profile).
    pub recommendation: Recommendation,
    /// Report label of the recommended pipeline.
    pub label: String,
    /// Mean MAP of the recommended pipeline's measured cells on this
    /// dataset (`None` when every cell was skipped).
    pub map: Option<f64>,
}

/// The validation verdict over a whole testbed.
#[derive(Debug, Clone)]
pub struct RecommenderValidation {
    /// Per-dataset outcomes.
    pub rows: Vec<RecommenderRow>,
    /// Mean MAP of the recommended pipeline, averaged over datasets
    /// with at least one measured cell.
    pub recommended_mean_map: f64,
    /// Mean MAP over every fixed pipeline (mean of the per-pipeline
    /// means below) — the one-size-fits-all baseline.
    pub fixed_mean_map: f64,
    /// Per-pipeline mean MAP over its measured cells, figure order.
    pub fixed_pipeline_means: Vec<(String, f64)>,
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Mean MAP of one pipeline's measured (non-skipped, non-empty) cells,
/// optionally restricted to one dataset.
fn pipeline_map(table: &ResultTable, label: &str, dataset: Option<&str>) -> Option<f64> {
    let maps: Vec<f64> = table
        .cells
        .iter()
        .filter(|c| {
            !c.skipped
                && c.n_points > 0
                && format!("{}+{}", c.explainer, c.detector) == label
                && dataset.is_none_or(|d| c.dataset == d)
        })
        .map(|c| c.map)
        .collect();
    if maps.is_empty() {
        None
    } else {
        Some(mean(&maps))
    }
}

/// Validates the recommender for `task` against a measured grid.
///
/// `table` must be the fixed grid of the matching pipeline family
/// (`point_pipelines` for [`RecommendTask::Point`], `summary_pipelines`
/// for [`RecommendTask::Summary`]) run over the same `testbeds`.
#[must_use]
pub fn validate_recommender(
    testbeds: &[TestbedDataset],
    table: &ResultTable,
    specs: &[PipelineSpec],
    task: RecommendTask,
) -> RecommenderValidation {
    let rows: Vec<RecommenderRow> = testbeds
        .iter()
        .map(|tb| {
            let profile = profile_dataset(&tb.dataset);
            let recommendation = recommend(&profile, task);
            let label = spec_label(&recommendation.spec);
            let map = pipeline_map(table, &label, Some(tb.name()));
            RecommenderRow {
                dataset: tb.name().to_string(),
                recommendation,
                label,
                map,
            }
        })
        .collect();

    let recommended: Vec<f64> = rows.iter().filter_map(|r| r.map).collect();
    let fixed_pipeline_means: Vec<(String, f64)> = specs
        .iter()
        .map(|spec| {
            let label = spec_label(spec);
            let map = pipeline_map(table, &label, None).unwrap_or(0.0);
            (label, map)
        })
        .collect();
    let fixed: Vec<f64> = fixed_pipeline_means.iter().map(|(_, m)| *m).collect();

    RecommenderValidation {
        rows,
        recommended_mean_map: mean(&recommended),
        fixed_mean_map: mean(&fixed),
        fixed_pipeline_means,
    }
}

/// Renders the validation as the text report the CLI prints and
/// EXPERIMENTS.md quotes.
#[must_use]
pub fn render(v: &RecommenderValidation) -> String {
    let mut out = String::new();
    out.push_str("dataset                    recommended           MAP\n");
    for row in &v.rows {
        let map = row
            .map
            .map_or_else(|| "   n/a".to_string(), |m| format!("{m:6.2}"));
        out.push_str(&format!("{:<26} {:<20} {map}\n", row.dataset, row.label));
    }
    out.push('\n');
    for (label, map) in &v.fixed_pipeline_means {
        out.push_str(&format!("fixed {label:<21} mean MAP {map:.3}\n"));
    }
    out.push_str(&format!(
        "\nrecommender mean MAP {:.3} vs fixed-pipeline mean {:.3} ({})\n",
        v.recommended_mean_map,
        v.fixed_mean_map,
        if v.recommended_mean_map >= v.fixed_mean_map {
            "recommender >= fixed mean"
        } else {
            "recommender BELOW fixed mean"
        }
    ));
    out
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_core::Pipeline;

    #[test]
    fn spec_labels_agree_with_built_pipeline_labels() {
        for compact in [
            "beam+lof",
            "beam:fx=false+abod",
            "refout+iforest",
            "lookout+lof",
            "hics+abod",
            "hics:fx=false+knndist",
        ] {
            let spec = PipelineSpec::parse(compact).unwrap();
            let built = Pipeline::from_spec(&spec).unwrap();
            assert_eq!(spec_label(&spec), built.label(), "for {compact}");
        }
    }

    #[test]
    fn pipeline_map_filters_skipped_cells() {
        use crate::runner::CellResult;
        let mut table = ResultTable::new("t");
        let cell = |map: f64, skipped: bool| CellResult {
            dataset: "D".into(),
            detector: "LOF".into(),
            explainer: "Beam_FX".into(),
            dim: 2,
            map,
            mean_recall: 0.0,
            seconds: 0.0,
            evaluations: 0,
            cache_hits: 0,
            cache_hit_rate: 0.0,
            peak_cache_entries: 0,
            n_points: usize::from(!skipped),
            skipped,
            skip_reason: None,
        };
        table.cells.push(cell(0.5, false));
        table.cells.push(cell(1.0, false));
        table.cells.push(cell(0.0, true));
        assert_eq!(pipeline_map(&table, "Beam_FX+LOF", Some("D")), Some(0.75));
        assert_eq!(pipeline_map(&table, "Beam_FX+LOF", None), Some(0.75));
        assert_eq!(pipeline_map(&table, "RefOut+LOF", None), None);
    }
}
