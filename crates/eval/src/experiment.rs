//! Experiment configuration: which datasets, pipelines, dimensionalities
//! and budgets an experiment run uses.
//!
//! The paper's full grid (Figures 9–11) is enormous — a single cell like
//! "LookOut × FastABOD, 4d explanations, 70d dataset" assesses ~900 000
//! subspaces (§4.2). Like the paper (which also skipped the priciest
//! combinations), the harness enforces an *evaluation budget* per cell
//! and records skipped cells explicitly. Three presets are provided:
//!
//! * [`ExperimentConfig::fast`] — smoke-test scale (seconds);
//! * [`ExperimentConfig::balanced`] — paper-faithful algorithm settings
//!   with capped points-of-interest and budgets (minutes; the default of
//!   the `anomex-eval` binary and the setting EXPERIMENTS.md reports);
//! * [`ExperimentConfig::full`] — the paper's §3.1 settings with only an
//!   anti-explosion guard (hours).

use crate::datasets::TestbedFamily;
use anomex_core::cache::ScoreCache;
use anomex_core::pipeline::Pipeline;
use anomex_dataset::gen::fullspace::FullSpacePreset;
use anomex_dataset::gen::hics::HicsPreset;
use anomex_spec::{DetectorSpec, ExplainerSpec, NeighborBackend, PipelineSpec, Precision};

/// Tunable knobs of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Seed for generators, detectors and randomized explainers.
    pub seed: u64,
    /// Beam width of Beam and RefOut.
    pub beam_width: usize,
    /// RefOut pool size.
    pub pool_size: usize,
    /// HiCS Monte-Carlo iterations.
    pub monte_carlo: usize,
    /// HiCS candidate cutoff per stage.
    pub candidate_cutoff: usize,
    /// iForest repetitions (averaged).
    pub iforest_repetitions: usize,
    /// LookOut budget (subspaces per summary).
    pub lookout_budget: usize,
    /// Result-list size of every explainer (paper: top-100).
    pub result_size: usize,
    /// Max points of interest per dataset (`None` = all outliers).
    pub max_pois: Option<usize>,
    /// Per-cell budget on detector invocations; combinations whose
    /// estimated cost exceeds it are skipped (and reported as such).
    pub eval_budget: usize,
    /// Capacity bound of the per-(dataset, detector) score cache shared
    /// across a grid sweep (`None` = unbounded). Only the `full` preset
    /// bounds it — its cells can touch millions of subspaces.
    pub cache_capacity: Option<usize>,
    /// Dimensionalities of the exhaustive-LOF ground-truth derivation
    /// for the full-space family.
    pub gt_dims_end: usize,
    /// Neighbor-search backend of the kNN detectors (LOF, Fast ABOD).
    /// `Exact` reproduces the committed golden grids bit-for-bit;
    /// `KdTree`/`Approx`/`Auto` trade exactness (Approx) or generality
    /// (KdTree: low dims) for sublinear neighbor search.
    pub backend: NeighborBackend,
    /// Storage precision of the kNN distance kernels. `F64` reproduces
    /// the committed golden grids bit-for-bit; `F32` halves kernel
    /// memory traffic while accumulating in f64 (rank-stable on every
    /// committed testbed — see DESIGN.md §14).
    pub precision: Precision,
}

impl ExperimentConfig {
    /// Smoke-test scale: small pools, few POIs, tiny budgets.
    #[must_use]
    pub fn fast(seed: u64) -> Self {
        ExperimentConfig {
            seed,
            beam_width: 10,
            pool_size: 25,
            monte_carlo: 15,
            candidate_cutoff: 50,
            iforest_repetitions: 2,
            lookout_budget: 25,
            result_size: 100,
            max_pois: Some(6),
            eval_budget: 3_000,
            cache_capacity: None,
            gt_dims_end: 3,
            backend: NeighborBackend::Exact,
            precision: Precision::F64,
        }
    }

    /// Paper-faithful algorithm behaviour with pragmatic budgets — the
    /// configuration EXPERIMENTS.md reports. Sized so the full 8-dataset
    /// grid completes in about an hour on a single core (the paper's own
    /// grid took days on its 4-core testbed).
    #[must_use]
    pub fn balanced(seed: u64) -> Self {
        ExperimentConfig {
            seed,
            beam_width: 10,
            pool_size: 40,
            monte_carlo: 30,
            candidate_cutoff: 100,
            iforest_repetitions: 1,
            lookout_budget: 100,
            result_size: 100,
            max_pois: Some(5),
            eval_budget: 9_000,
            cache_capacity: None,
            gt_dims_end: 4,
            backend: NeighborBackend::Exact,
            precision: Precision::F64,
        }
    }

    /// The paper's §3.1 hyper-parameters; only an anti-explosion guard
    /// remains.
    #[must_use]
    pub fn full(seed: u64) -> Self {
        ExperimentConfig {
            seed,
            beam_width: 100,
            pool_size: 100,
            monte_carlo: 100,
            candidate_cutoff: 400,
            iforest_repetitions: 10,
            lookout_budget: 100,
            result_size: 100,
            max_pois: None,
            eval_budget: 2_000_000,
            cache_capacity: Some(1 << 20),
            gt_dims_end: 4,
            backend: NeighborBackend::Exact,
            precision: Precision::F64,
        }
    }

    /// The datasets of an experiment run (all 8 except in fast mode).
    #[must_use]
    pub fn datasets(&self, fast: bool) -> Vec<TestbedFamily> {
        if fast {
            vec![
                TestbedFamily::Hics(HicsPreset::D14),
                TestbedFamily::Hics(HicsPreset::D23),
                TestbedFamily::FullSpace(FullSpacePreset::BreastA),
            ]
        } else {
            TestbedFamily::all()
        }
    }

    /// The ground-truth derivation dims for the full-space family.
    #[must_use]
    pub fn gt_dims(&self) -> Vec<usize> {
        (2..=self.gt_dims_end).collect()
    }

    /// A fresh score cache honouring [`ExperimentConfig::cache_capacity`].
    /// The grid runner creates one per (dataset, detector) pair and
    /// shares it across every pipeline and dimensionality of the sweep.
    #[must_use]
    pub fn score_cache(&self) -> ScoreCache {
        match self.cache_capacity {
            Some(cap) => ScoreCache::with_capacity(cap),
            None => ScoreCache::new(),
        }
    }

    /// The three paper detectors under this configuration, as canonical
    /// specs, in the order they appear in every figure.
    #[must_use]
    pub fn detector_specs(&self) -> [DetectorSpec; 3] {
        [
            DetectorSpec::lof()
                .with_backend(self.backend)
                .with_precision(self.precision),
            DetectorSpec::fast_abod()
                .with_backend(self.backend)
                .with_precision(self.precision),
            DetectorSpec::IsolationForest {
                trees: 100,
                psi: 256,
                reps: self.iforest_repetitions,
                seed: self.seed,
            },
        ]
    }

    fn beam_spec(&self) -> ExplainerSpec {
        ExplainerSpec::Beam {
            width: self.beam_width,
            results: self.result_size,
            fixed_dim: true,
        }
    }

    fn refout_spec(&self) -> ExplainerSpec {
        ExplainerSpec::RefOut {
            pool: self.pool_size,
            width: self.beam_width,
            results: self.result_size,
            seed: self.seed,
        }
    }

    fn lookout_spec(&self) -> ExplainerSpec {
        ExplainerSpec::LookOut {
            budget: self.lookout_budget,
        }
    }

    fn hics_spec(&self) -> ExplainerSpec {
        ExplainerSpec::Hics {
            mc: self.monte_carlo,
            cutoff: self.candidate_cutoff,
            results: self.result_size,
            fixed_dim: true,
            seed: self.seed,
        }
    }

    /// The grid's explainer × detector cross product, figure order
    /// (explainer-major, detectors in [`ExperimentConfig::detector_specs`]
    /// order).
    fn cross(&self, explainers: [ExplainerSpec; 2]) -> Vec<PipelineSpec> {
        let mut specs = Vec::with_capacity(6);
        for explainer in explainers {
            for detector in self.detector_specs() {
                specs.push(PipelineSpec::new(detector, explainer));
            }
        }
        specs
    }

    /// The six point-explanation pipelines of Figure 9 —
    /// {Beam_FX, RefOut} × {LOF, FastABOD, iForest} — as canonical spec
    /// values. The grid is data: hash it, print it, ship it to serve.
    #[must_use]
    pub fn point_specs(&self) -> Vec<PipelineSpec> {
        self.cross([self.beam_spec(), self.refout_spec()])
    }

    /// The six summarization pipelines of Figure 10 —
    /// {LookOut, HiCS_FX} × {LOF, FastABOD, iForest} — as canonical
    /// spec values.
    #[must_use]
    pub fn summary_specs(&self) -> Vec<PipelineSpec> {
        self.cross([self.lookout_spec(), self.hics_spec()])
    }

    /// The six point-explanation pipelines of Figure 9, built from
    /// [`ExperimentConfig::point_specs`].
    #[must_use]
    pub fn point_pipelines(&self) -> Vec<Pipeline> {
        build_pipelines(&self.point_specs())
    }

    /// The six summarization pipelines of Figure 10, built from
    /// [`ExperimentConfig::summary_specs`].
    #[must_use]
    pub fn summary_pipelines(&self) -> Vec<Pipeline> {
        build_pipelines(&self.summary_specs())
    }

    /// Estimated detector invocations of one cell, used against
    /// [`ExperimentConfig::eval_budget`]. Mirrors each algorithm's
    /// structure (Beam: exhaustive pairs + stage extensions per point;
    /// RefOut: pool + refinement per point; LookOut: exhaustive
    /// enumeration; HiCS: final ranking only — its contrast search runs
    /// no detector).
    #[must_use]
    pub fn estimated_evaluations(
        &self,
        explainer: &str,
        d: usize,
        dim: usize,
        n_pois: usize,
    ) -> u128 {
        let c2 = anomex_dataset::subspace::n_choose_k(d, 2);
        let stages = dim.saturating_sub(2) as u128;
        match explainer {
            "Beam" | "Beam_FX" => {
                // Stage 1 shared across points via the cache; later stages
                // are point-specific.
                c2 + stages * (self.beam_width as u128) * (d as u128) * (n_pois as u128)
            }
            "RefOut" => (self.pool_size as u128 + self.result_size as u128) * (n_pois as u128),
            "LookOut" => anomex_dataset::subspace::n_choose_k(d, dim),
            "HiCS" | "HiCS_FX" => (self.candidate_cutoff + self.result_size) as u128,
            _ => 0,
        }
    }
}

/// Materializes spec values into live pipelines.
///
/// # Panics
/// Panics when a spec carries out-of-range parameters — the preset
/// builders above only emit valid ones.
#[must_use]
pub fn build_pipelines(specs: &[PipelineSpec]) -> Vec<Pipeline> {
    specs
        .iter()
        .map(|spec| Pipeline::from_spec(spec).expect("grid specs are valid"))
        .collect()
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn presets_ordered_by_scale() {
        let f = ExperimentConfig::fast(1);
        let b = ExperimentConfig::balanced(1);
        let full = ExperimentConfig::full(1);
        assert!(f.beam_width <= b.beam_width && b.beam_width <= full.beam_width);
        assert!(f.eval_budget < b.eval_budget && b.eval_budget < full.eval_budget);
        assert_eq!(full.max_pois, None);
        assert_eq!(full.beam_width, 100); // the paper's §3.1 value
        assert_eq!(full.candidate_cutoff, 400);
    }

    #[test]
    fn pipelines_cover_the_twelve_pairs() {
        let cfg = ExperimentConfig::fast(0);
        let pts = cfg.point_pipelines();
        let sums = cfg.summary_pipelines();
        assert_eq!(pts.len(), 6);
        assert_eq!(sums.len(), 6);
        let labels: Vec<String> = pts.iter().chain(&sums).map(Pipeline::label).collect();
        assert!(labels.contains(&"Beam_FX+LOF".to_string()));
        assert!(labels.contains(&"RefOut+iForest".to_string()));
        assert!(labels.contains(&"LookOut+FastABOD".to_string()));
        assert!(labels.contains(&"HiCS_FX+iForest".to_string()));
        // All twelve are distinct.
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 12);
    }

    #[test]
    fn grid_specs_are_data_with_distinct_fingerprints() {
        let cfg = ExperimentConfig::balanced(0);
        let specs: Vec<PipelineSpec> = cfg
            .point_specs()
            .into_iter()
            .chain(cfg.summary_specs())
            .collect();
        assert_eq!(specs.len(), 12);
        let mut prints: Vec<u64> = specs.iter().map(PipelineSpec::fingerprint).collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), 12, "all twelve grid cells must be distinct");
        // Every spec round-trips through its canonical text.
        for spec in &specs {
            assert_eq!(PipelineSpec::parse(&spec.canonical()).unwrap(), *spec);
        }
        // Point/summary split matches the explainer family.
        assert!(cfg.point_specs().iter().all(|s| !s.is_summary()));
        assert!(cfg.summary_specs().iter().all(PipelineSpec::is_summary));
    }

    #[test]
    fn estimated_evaluations_reflect_structure() {
        let cfg = ExperimentConfig::balanced(0);
        // LookOut explodes combinatorially with dim...
        let lo_2d = cfg.estimated_evaluations("LookOut", 70, 2, 10);
        let lo_4d = cfg.estimated_evaluations("LookOut", 70, 4, 10);
        assert!(lo_4d > lo_2d * 100);
        assert_eq!(lo_4d, anomex_dataset::subspace::n_choose_k(70, 4));
        // ...while RefOut stays flat in dim (its hallmark, §4.3).
        let ro_2d = cfg.estimated_evaluations("RefOut", 70, 2, 10);
        let ro_5d = cfg.estimated_evaluations("RefOut", 70, 5, 10);
        assert_eq!(ro_2d, ro_5d);
        // Beam grows with points, dims and features.
        let beam = cfg.estimated_evaluations("Beam_FX", 39, 5, 10);
        assert!(beam > cfg.estimated_evaluations("Beam_FX", 39, 2, 10));
    }

    #[test]
    fn backend_knob_reaches_the_knn_detector_specs() {
        let mut cfg = ExperimentConfig::balanced(0);
        cfg.backend = NeighborBackend::KdTree;
        let specs = cfg.detector_specs();
        assert_eq!(specs[0].neighbor_backend(), Some(NeighborBackend::KdTree));
        assert_eq!(specs[1].neighbor_backend(), Some(NeighborBackend::KdTree));
        assert_eq!(specs[2].neighbor_backend(), None); // iForest has no kNN
                                                       // Exact stays wire-compatible: the default grid's canonical
                                                       // strings (and thus fingerprints and registry keys) are the
                                                       // historical ones.
        let exact = ExperimentConfig::balanced(0).detector_specs();
        assert_eq!(exact[0].canonical(), "lof:k=15");
        assert_eq!(exact[1].canonical(), "abod:k=10");
    }

    #[test]
    fn precision_knob_reaches_the_knn_detector_specs() {
        let mut cfg = ExperimentConfig::balanced(0);
        cfg.precision = Precision::F32;
        let specs = cfg.detector_specs();
        assert_eq!(specs[0].precision(), Some(Precision::F32));
        assert_eq!(specs[1].precision(), Some(Precision::F32));
        assert_eq!(specs[2].precision(), None); // iForest has no kNN
        assert_eq!(specs[0].canonical(), "lof:k=15,precision=f32");
        // The f64 default is elided everywhere, so existing canonical
        // strings, fingerprints and registry keys are untouched.
        let default = ExperimentConfig::balanced(0).detector_specs();
        assert_eq!(default[0].precision(), Some(Precision::F64));
        assert_eq!(default[0].canonical(), "lof:k=15");
    }

    #[test]
    fn fast_datasets_are_a_subset() {
        let cfg = ExperimentConfig::fast(0);
        assert_eq!(cfg.datasets(true).len(), 3);
        assert_eq!(cfg.datasets(false).len(), 8);
    }
}
