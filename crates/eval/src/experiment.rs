//! Experiment configuration: which datasets, pipelines, dimensionalities
//! and budgets an experiment run uses.
//!
//! The paper's full grid (Figures 9–11) is enormous — a single cell like
//! "LookOut × FastABOD, 4d explanations, 70d dataset" assesses ~900 000
//! subspaces (§4.2). Like the paper (which also skipped the priciest
//! combinations), the harness enforces an *evaluation budget* per cell
//! and records skipped cells explicitly. Three presets are provided:
//!
//! * [`ExperimentConfig::fast`] — smoke-test scale (seconds);
//! * [`ExperimentConfig::balanced`] — paper-faithful algorithm settings
//!   with capped points-of-interest and budgets (minutes; the default of
//!   the `anomex-eval` binary and the setting EXPERIMENTS.md reports);
//! * [`ExperimentConfig::full`] — the paper's §3.1 settings with only an
//!   anti-explosion guard (hours).

use crate::datasets::TestbedFamily;
use anomex_core::cache::ScoreCache;
use anomex_core::pipeline::Pipeline;
use anomex_core::{Beam, Hics, LookOut, RefOut};
use anomex_dataset::gen::fullspace::FullSpacePreset;
use anomex_dataset::gen::hics::HicsPreset;
use anomex_detectors::{FastAbod, IsolationForest, Lof};

/// Tunable knobs of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Seed for generators, detectors and randomized explainers.
    pub seed: u64,
    /// Beam width of Beam and RefOut.
    pub beam_width: usize,
    /// RefOut pool size.
    pub pool_size: usize,
    /// HiCS Monte-Carlo iterations.
    pub monte_carlo: usize,
    /// HiCS candidate cutoff per stage.
    pub candidate_cutoff: usize,
    /// iForest repetitions (averaged).
    pub iforest_repetitions: usize,
    /// LookOut budget (subspaces per summary).
    pub lookout_budget: usize,
    /// Result-list size of every explainer (paper: top-100).
    pub result_size: usize,
    /// Max points of interest per dataset (`None` = all outliers).
    pub max_pois: Option<usize>,
    /// Per-cell budget on detector invocations; combinations whose
    /// estimated cost exceeds it are skipped (and reported as such).
    pub eval_budget: usize,
    /// Capacity bound of the per-(dataset, detector) score cache shared
    /// across a grid sweep (`None` = unbounded). Only the `full` preset
    /// bounds it — its cells can touch millions of subspaces.
    pub cache_capacity: Option<usize>,
    /// Dimensionalities of the exhaustive-LOF ground-truth derivation
    /// for the full-space family.
    pub gt_dims_end: usize,
}

impl ExperimentConfig {
    /// Smoke-test scale: small pools, few POIs, tiny budgets.
    #[must_use]
    pub fn fast(seed: u64) -> Self {
        ExperimentConfig {
            seed,
            beam_width: 10,
            pool_size: 25,
            monte_carlo: 15,
            candidate_cutoff: 50,
            iforest_repetitions: 2,
            lookout_budget: 25,
            result_size: 100,
            max_pois: Some(6),
            eval_budget: 3_000,
            cache_capacity: None,
            gt_dims_end: 3,
        }
    }

    /// Paper-faithful algorithm behaviour with pragmatic budgets — the
    /// configuration EXPERIMENTS.md reports. Sized so the full 8-dataset
    /// grid completes in about an hour on a single core (the paper's own
    /// grid took days on its 4-core testbed).
    #[must_use]
    pub fn balanced(seed: u64) -> Self {
        ExperimentConfig {
            seed,
            beam_width: 10,
            pool_size: 40,
            monte_carlo: 30,
            candidate_cutoff: 100,
            iforest_repetitions: 1,
            lookout_budget: 100,
            result_size: 100,
            max_pois: Some(5),
            eval_budget: 9_000,
            cache_capacity: None,
            gt_dims_end: 4,
        }
    }

    /// The paper's §3.1 hyper-parameters; only an anti-explosion guard
    /// remains.
    #[must_use]
    pub fn full(seed: u64) -> Self {
        ExperimentConfig {
            seed,
            beam_width: 100,
            pool_size: 100,
            monte_carlo: 100,
            candidate_cutoff: 400,
            iforest_repetitions: 10,
            lookout_budget: 100,
            result_size: 100,
            max_pois: None,
            eval_budget: 2_000_000,
            cache_capacity: Some(1 << 20),
            gt_dims_end: 4,
        }
    }

    /// The datasets of an experiment run (all 8 except in fast mode).
    #[must_use]
    pub fn datasets(&self, fast: bool) -> Vec<TestbedFamily> {
        if fast {
            vec![
                TestbedFamily::Hics(HicsPreset::D14),
                TestbedFamily::Hics(HicsPreset::D23),
                TestbedFamily::FullSpace(FullSpacePreset::BreastA),
            ]
        } else {
            TestbedFamily::all()
        }
    }

    /// The ground-truth derivation dims for the full-space family.
    #[must_use]
    pub fn gt_dims(&self) -> Vec<usize> {
        (2..=self.gt_dims_end).collect()
    }

    /// A fresh score cache honouring [`ExperimentConfig::cache_capacity`].
    /// The grid runner creates one per (dataset, detector) pair and
    /// shares it across every pipeline and dimensionality of the sweep.
    #[must_use]
    pub fn score_cache(&self) -> ScoreCache {
        match self.cache_capacity {
            Some(cap) => ScoreCache::with_capacity(cap),
            None => ScoreCache::new(),
        }
    }

    /// The three paper detectors under this configuration.
    fn lof(&self) -> Lof {
        Lof::new(15).expect("valid k")
    }

    fn abod(&self) -> FastAbod {
        FastAbod::new(10).expect("valid k")
    }

    fn iforest(&self) -> IsolationForest {
        IsolationForest::builder()
            .trees(100)
            .subsample(256)
            .repetitions(self.iforest_repetitions)
            .seed(self.seed)
            .build()
            .expect("valid parameters")
    }

    fn beam(&self) -> Beam {
        Beam::new()
            .beam_width(self.beam_width)
            .result_size(self.result_size)
            .fixed_dim(true)
    }

    fn refout(&self) -> RefOut {
        RefOut::new()
            .pool_size(self.pool_size)
            .beam_width(self.beam_width)
            .result_size(self.result_size)
            .seed(self.seed)
    }

    fn lookout(&self) -> LookOut {
        LookOut::new().budget(self.lookout_budget)
    }

    fn hics(&self) -> Hics {
        Hics::new()
            .monte_carlo_iterations(self.monte_carlo)
            .candidate_cutoff(self.candidate_cutoff)
            .result_size(self.result_size)
            .fixed_dim(true)
            .seed(self.seed)
    }

    /// The six point-explanation pipelines of Figure 9:
    /// {Beam_FX, RefOut} × {LOF, FastABOD, iForest}.
    #[must_use]
    pub fn point_pipelines(&self) -> Vec<Pipeline> {
        vec![
            Pipeline::point(self.lof(), self.beam()),
            Pipeline::point(self.abod(), self.beam()),
            Pipeline::point(self.iforest(), self.beam()),
            Pipeline::point(self.lof(), self.refout()),
            Pipeline::point(self.abod(), self.refout()),
            Pipeline::point(self.iforest(), self.refout()),
        ]
    }

    /// The six summarization pipelines of Figure 10:
    /// {LookOut, HiCS_FX} × {LOF, FastABOD, iForest}.
    #[must_use]
    pub fn summary_pipelines(&self) -> Vec<Pipeline> {
        vec![
            Pipeline::summary(self.lof(), self.lookout()),
            Pipeline::summary(self.abod(), self.lookout()),
            Pipeline::summary(self.iforest(), self.lookout()),
            Pipeline::summary(self.lof(), self.hics()),
            Pipeline::summary(self.abod(), self.hics()),
            Pipeline::summary(self.iforest(), self.hics()),
        ]
    }

    /// Estimated detector invocations of one cell, used against
    /// [`ExperimentConfig::eval_budget`]. Mirrors each algorithm's
    /// structure (Beam: exhaustive pairs + stage extensions per point;
    /// RefOut: pool + refinement per point; LookOut: exhaustive
    /// enumeration; HiCS: final ranking only — its contrast search runs
    /// no detector).
    #[must_use]
    pub fn estimated_evaluations(
        &self,
        explainer: &str,
        d: usize,
        dim: usize,
        n_pois: usize,
    ) -> u128 {
        let c2 = anomex_dataset::subspace::n_choose_k(d, 2);
        let stages = dim.saturating_sub(2) as u128;
        match explainer {
            "Beam" | "Beam_FX" => {
                // Stage 1 shared across points via the cache; later stages
                // are point-specific.
                c2 + stages * (self.beam_width as u128) * (d as u128) * (n_pois as u128)
            }
            "RefOut" => (self.pool_size as u128 + self.result_size as u128) * (n_pois as u128),
            "LookOut" => anomex_dataset::subspace::n_choose_k(d, dim),
            "HiCS" | "HiCS_FX" => (self.candidate_cutoff + self.result_size) as u128,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn presets_ordered_by_scale() {
        let f = ExperimentConfig::fast(1);
        let b = ExperimentConfig::balanced(1);
        let full = ExperimentConfig::full(1);
        assert!(f.beam_width <= b.beam_width && b.beam_width <= full.beam_width);
        assert!(f.eval_budget < b.eval_budget && b.eval_budget < full.eval_budget);
        assert_eq!(full.max_pois, None);
        assert_eq!(full.beam_width, 100); // the paper's §3.1 value
        assert_eq!(full.candidate_cutoff, 400);
    }

    #[test]
    fn pipelines_cover_the_twelve_pairs() {
        let cfg = ExperimentConfig::fast(0);
        let pts = cfg.point_pipelines();
        let sums = cfg.summary_pipelines();
        assert_eq!(pts.len(), 6);
        assert_eq!(sums.len(), 6);
        let labels: Vec<String> = pts.iter().chain(&sums).map(Pipeline::label).collect();
        assert!(labels.contains(&"Beam_FX+LOF".to_string()));
        assert!(labels.contains(&"RefOut+iForest".to_string()));
        assert!(labels.contains(&"LookOut+FastABOD".to_string()));
        assert!(labels.contains(&"HiCS_FX+iForest".to_string()));
        // All twelve are distinct.
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 12);
    }

    #[test]
    fn estimated_evaluations_reflect_structure() {
        let cfg = ExperimentConfig::balanced(0);
        // LookOut explodes combinatorially with dim...
        let lo_2d = cfg.estimated_evaluations("LookOut", 70, 2, 10);
        let lo_4d = cfg.estimated_evaluations("LookOut", 70, 4, 10);
        assert!(lo_4d > lo_2d * 100);
        assert_eq!(lo_4d, anomex_dataset::subspace::n_choose_k(70, 4));
        // ...while RefOut stays flat in dim (its hallmark, §4.3).
        let ro_2d = cfg.estimated_evaluations("RefOut", 70, 2, 10);
        let ro_5d = cfg.estimated_evaluations("RefOut", 70, 5, 10);
        assert_eq!(ro_2d, ro_5d);
        // Beam grows with points, dims and features.
        let beam = cfg.estimated_evaluations("Beam_FX", 39, 5, 10);
        assert!(beam > cfg.estimated_evaluations("Beam_FX", 39, 2, 10));
    }

    #[test]
    fn fast_datasets_are_a_subset() {
        let cfg = ExperimentConfig::fast(0);
        assert_eq!(cfg.datasets(true).len(), 3);
        assert_eq!(cfg.datasets(false).len(), 8);
    }
}
