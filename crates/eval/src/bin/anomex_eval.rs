//! `anomex-eval` — the experiment harness CLI.
//!
//! Regenerates every table and figure of the paper's evaluation section:
//!
//! ```text
//! anomex-eval table1  [--fast|--full] [--seed N] [--out DIR]
//! anomex-eval fig8    [--fast|--full] ...
//! anomex-eval fig9    ...   # MAP of Beam & RefOut pipelines
//! anomex-eval fig10   ...   # MAP of HiCS & LookOut pipelines
//! anomex-eval fig11   ...   # pipeline runtimes
//! anomex-eval table2  ...   # effectiveness/efficiency trade-offs
//! anomex-eval recommend ... # profile-driven recommender vs fixed grid
//! anomex-eval all     ...   # everything, sharing generated datasets
//! ```
//!
//! Text reports go to stdout; JSON result tables go to `--out`
//! (default `results/`).

use anomex_eval::datasets::{TestbedDataset, TestbedFamily};
use anomex_eval::experiment::ExperimentConfig;
use anomex_eval::report;
use anomex_eval::runner::{run_grid, ResultTable};
use anomex_eval::tradeoff;
use anomex_spec::{NeighborBackend, Precision};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    experiment: String,
    mode: Mode,
    seed: u64,
    out: PathBuf,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    backend: NeighborBackend,
    precision: Precision,
}

#[derive(PartialEq, Clone, Copy)]
enum Mode {
    Fast,
    Balanced,
    Full,
}

fn parse_args() -> Result<Args, String> {
    let mut experiment = None;
    let mut mode = Mode::Balanced;
    let mut seed = 42u64;
    let mut out = PathBuf::from("results");
    let mut trace = None;
    let mut metrics = None;
    let mut backend = NeighborBackend::Exact;
    let mut precision = Precision::F64;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--fast" => mode = Mode::Fast,
            "--full" => mode = Mode::Full,
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--out" => out = PathBuf::from(argv.next().ok_or("--out needs a value")?),
            "--trace" => trace = Some(PathBuf::from(argv.next().ok_or("--trace needs a value")?)),
            "--metrics" => {
                metrics = Some(PathBuf::from(argv.next().ok_or("--metrics needs a value")?));
            }
            "--backend" => {
                backend = NeighborBackend::parse(&argv.next().ok_or("--backend needs a value")?)?;
            }
            "--precision" => {
                precision = Precision::parse(&argv.next().ok_or("--precision needs a value")?)?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if experiment.is_none() && !other.starts_with('-') => {
                experiment = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(Args {
        experiment: experiment.ok_or_else(|| USAGE.to_string())?,
        mode,
        seed,
        out,
        trace,
        metrics,
        backend,
        precision,
    })
}

const USAGE: &str =
    "usage: anomex-eval <table1|fig8|fig9|fig10|fig11|table2|recommend|overlap|all> \
[--fast|--full] [--seed N] [--out DIR] [--trace FILE] [--metrics FILE] \
[--backend exact|kdtree|approx|auto] [--precision f64|f32]";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = match args.mode {
        Mode::Fast => ExperimentConfig::fast(args.seed),
        Mode::Balanced => ExperimentConfig::balanced(args.seed),
        Mode::Full => ExperimentConfig::full(args.seed),
    };
    cfg.backend = args.backend;
    cfg.precision = args.precision;
    let fast = args.mode == Mode::Fast;
    std::fs::create_dir_all(&args.out).expect("create output directory");
    if let Some(path) = &args.trace {
        match anomex_obs::JsonLinesSubscriber::to_file(path) {
            Ok(sub) => anomex_obs::install(std::sync::Arc::new(sub)),
            Err(e) => {
                eprintln!("error: cannot open trace file {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!("# generating testbed datasets (ground truth derivation may take a while)...");
    let testbeds: Vec<TestbedDataset> = cfg
        .datasets(fast)
        .into_iter()
        .map(|f| {
            eprintln!("#   {}", f.name());
            TestbedDataset::build(f, cfg.seed, &cfg.gt_dims())
        })
        .collect();

    match args.experiment.as_str() {
        "table1" => {
            println!("Table 1: dataset characteristics\n");
            println!("{}", report::table1(&testbeds));
        }
        "fig8" => {
            println!("Figure 8: relevant-subspace dimensionality & contamination\n");
            println!("{}", report::fig8(&testbeds));
        }
        "fig9" => {
            let t = grid("fig9", &testbeds, &cfg, true, &args.out);
            println!("Figure 9: MAP of point-explanation pipelines\n");
            println!("{}", report::map_grid(&t));
        }
        "fig10" => {
            let t = grid("fig10", &testbeds, &cfg, false, &args.out);
            println!("Figure 10: MAP of summarization pipelines\n");
            println!("{}", report::map_grid(&t));
        }
        "fig11" => {
            // The paper reports runtime on HiCS 14–39d plus Electricity.
            let subset: Vec<TestbedDataset> = testbeds
                .into_iter()
                .filter(|t| fig11_dataset(t.family))
                .collect();
            let p = grid("fig11-point", &subset, &cfg, true, &args.out);
            let s = grid("fig11-summary", &subset, &cfg, false, &args.out);
            println!("Figure 11: runtime of detection & explanation pipelines (seconds)\n");
            println!("{}", report::runtime_grid(&p));
            println!("{}", report::runtime_grid(&s));
            println!("Score-cache hit rates (share of subspace scores reused)\n");
            println!("{}", report::cache_grid(&p));
            println!("{}", report::cache_grid(&s));
        }
        "table2" => {
            let p = grid("fig9", &testbeds, &cfg, true, &args.out);
            let s = grid("fig10", &testbeds, &cfg, false, &args.out);
            println!("Table 2: effectiveness/efficiency trade-offs\n");
            println!("{}", tradeoff::render(&tradeoff::build(&p, &s)));
        }
        "all" => {
            println!("Table 1: dataset characteristics\n");
            println!("{}", report::table1(&testbeds));
            println!("Figure 8: relevant-subspace dimensionality & contamination\n");
            println!("{}", report::fig8(&testbeds));
            let p = grid("fig9", &testbeds, &cfg, true, &args.out);
            println!("Figure 9: MAP of point-explanation pipelines\n");
            println!("{}", report::map_grid(&p));
            let s = grid("fig10", &testbeds, &cfg, false, &args.out);
            println!("Figure 10: MAP of summarization pipelines\n");
            println!("{}", report::map_grid(&s));
            println!("Figure 11: runtime of pipelines (seconds)\n");
            let fig11_p = filter_table(&p, "fig11-point");
            let fig11_s = filter_table(&s, "fig11-summary");
            println!("{}", report::runtime_grid(&fig11_p));
            println!("{}", report::runtime_grid(&fig11_s));
            println!("Score-cache hit rates (share of subspace scores reused)\n");
            println!("{}", report::cache_grid(&fig11_p));
            println!("{}", report::cache_grid(&fig11_s));
            println!("Table 2: effectiveness/efficiency trade-offs\n");
            println!("{}", tradeoff::render(&tradeoff::build(&p, &s)));
        }
        "recommend" => {
            let t = grid("fig9", &testbeds, &cfg, true, &args.out);
            let specs = cfg.point_specs();
            let v = anomex_eval::recommend::validate_recommender(
                &testbeds,
                &t,
                &specs,
                anomex_spec::RecommendTask::Point,
            );
            println!("Profile-driven pipeline recommendation (point explanation task)\n");
            println!("{}", anomex_eval::recommend::render(&v));
            let path = args.out.join("recommend.json");
            std::fs::write(&path, recommend_json(&v)).expect("write recommendation json");
            eprintln!("#   wrote {}", path.display());
        }
        "overlap" => {
            // The paper's "complementary experiments": outlier/inlier
            // score separability (AUC) per projection dimensionality.
            use anomex_dataset::gen::hics::{generate_hics, HicsPreset};
            use anomex_detectors::paper_detectors;
            let preset = if fast {
                HicsPreset::D14
            } else {
                HicsPreset::D23
            };
            let g = generate_hics(preset, cfg.seed);
            println!("Score-overlap (masking) analysis on {}\n", preset.name());
            for det in paper_detectors(cfg.seed).expect("paper hyper-parameters are valid") {
                let profile = anomex_eval::overlap::masking_profile(&g, &det);
                println!(
                    "{}",
                    anomex_eval::overlap::render_profile(det.name(), &profile)
                );
            }
        }
        other => {
            eprintln!("unknown experiment {other:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.metrics {
        // Deterministic (name-sorted) dump of every counter/histogram
        // the run touched — the counterpart of the JSON-lines trace.
        let mut json = anomex_obs::snapshot().to_json();
        json.push('\n');
        std::fs::write(path, json).expect("write metrics snapshot");
        eprintln!("#   wrote {}", path.display());
    }
    if args.trace.is_some() {
        // Drop the installed subscriber so its Drop impl flushes the file.
        anomex_obs::uninstall();
    }
    ExitCode::SUCCESS
}

fn recommend_json(v: &anomex_eval::recommend::RecommenderValidation) -> String {
    use anomex_spec::Json;
    let rows: Vec<Json> = v
        .rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("dataset".into(), Json::Str(r.dataset.clone())),
                ("label".into(), Json::Str(r.label.clone())),
                ("map".into(), r.map.map_or(Json::Null, Json::num_f64)),
                ("recommendation".into(), r.recommendation.to_json()),
            ])
        })
        .collect();
    let fixed: Vec<Json> = v
        .fixed_pipeline_means
        .iter()
        .map(|(label, map)| {
            Json::Obj(vec![
                ("label".into(), Json::Str(label.clone())),
                ("mean_map".into(), Json::num_f64(*map)),
            ])
        })
        .collect();
    let mut json = Json::Obj(vec![
        ("task".into(), Json::Str("point".into())),
        ("rows".into(), Json::Arr(rows)),
        (
            "recommended_mean_map".into(),
            Json::num_f64(v.recommended_mean_map),
        ),
        ("fixed_mean_map".into(), Json::num_f64(v.fixed_mean_map)),
        ("fixed_pipelines".into(), Json::Arr(fixed)),
    ])
    .emit();
    json.push('\n');
    json
}

fn fig11_dataset(f: TestbedFamily) -> bool {
    matches!(
        f.name(),
        "HiCS-14d" | "HiCS-23d" | "HiCS-39d" | "Electricity-like (C)"
    )
}

fn filter_table(t: &ResultTable, name: &str) -> ResultTable {
    let mut out = ResultTable::new(name);
    out.cells = t
        .cells
        .iter()
        .filter(|c| {
            matches!(
                c.dataset.as_str(),
                "HiCS-14d" | "HiCS-23d" | "HiCS-39d" | "Electricity-like (C)"
            )
        })
        .cloned()
        .collect();
    out
}

fn grid(
    name: &str,
    testbeds: &[TestbedDataset],
    cfg: &ExperimentConfig,
    point: bool,
    out_dir: &Path,
) -> ResultTable {
    eprintln!("# running {name} grid...");
    let pipelines = if point {
        cfg.point_pipelines()
    } else {
        cfg.summary_pipelines()
    };
    let table = run_grid(name, testbeds, &pipelines, cfg);
    let path = out_dir.join(format!("{name}.json"));
    std::fs::write(&path, table.to_json()).expect("write result json");
    eprintln!("#   wrote {}", path.display());
    table
}
