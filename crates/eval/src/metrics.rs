//! The effectiveness metrics of the paper's §3.3: Precision (Eq. 1),
//! Average Precision (Eq. 2), MAP (Eq. 3) and Mean Recall.
//!
//! A returned subspace counts as relevant **only** when it is *identical*
//! to a ground-truth subspace of the point (exact-match semantics, §3.3).
//! MAP rewards explainers that rank the relevant subspace(s) at the top
//! of their candidate list — the property that separates a usable
//! explanation from a needle buried in a haystack.

use anomex_core::RankedSubspaces;
use anomex_dataset::Subspace;

/// Precision of one explanation (Eq. 1):
/// `|REL_p ∩ EXP_a(p)| / |EXP_a(p)|`. Empty explanations score 0.
#[must_use]
pub fn precision(relevant: &[&Subspace], explanation: &RankedSubspaces) -> f64 {
    if explanation.is_empty() {
        return 0.0;
    }
    let hits = explanation
        .entries()
        .iter()
        .filter(|(s, _)| relevant.contains(&s))
        .count();
    hits as f64 / explanation.len() as f64
}

/// Average Precision of one explanation (Eq. 2):
/// `Σ_k P@k(p) · rel(k) / |REL_p|`, where `P@k` is the precision of the
/// top-`k` prefix and `rel(k)` flags whether the `k`-th returned subspace
/// is relevant. Returns 0 when the point has no relevant subspaces.
#[must_use]
pub fn average_precision(relevant: &[&Subspace], explanation: &RankedSubspaces) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0f64;
    for (k, (s, _)) in explanation.entries().iter().enumerate() {
        if relevant.contains(&s) {
            hits += 1;
            sum += hits as f64 / (k + 1) as f64;
        }
    }
    sum / relevant.len() as f64
}

/// Recall of one explanation: `|REL_p ∩ EXP_a(p)| / |REL_p|`.
/// Returns 0 when the point has no relevant subspaces.
#[must_use]
pub fn recall(relevant: &[&Subspace], explanation: &RankedSubspaces) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let hits = relevant
        .iter()
        .filter(|r| explanation.rank_of(r).is_some())
        .count();
    hits as f64 / relevant.len() as f64
}

/// Mean Average Precision over a set of points (Eq. 3). Each element of
/// `per_point` pairs a point's relevant subspaces with its explanation.
/// Returns 0 for an empty set.
#[must_use]
pub fn map(per_point: &[(Vec<&Subspace>, &RankedSubspaces)]) -> f64 {
    if per_point.is_empty() {
        return 0.0;
    }
    per_point
        .iter()
        .map(|(rel, exp)| average_precision(rel, exp))
        .sum::<f64>()
        / per_point.len() as f64
}

/// Mean Recall over a set of points. Returns 0 for an empty set.
#[must_use]
pub fn mean_recall(per_point: &[(Vec<&Subspace>, &RankedSubspaces)]) -> f64 {
    if per_point.is_empty() {
        return 0.0;
    }
    per_point
        .iter()
        .map(|(rel, exp)| recall(rel, exp))
        .sum::<f64>()
        / per_point.len() as f64
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    fn s(fs: &[usize]) -> Subspace {
        Subspace::new(fs.to_vec())
    }

    fn ranking(subs: &[&[usize]]) -> RankedSubspaces {
        RankedSubspaces::from_ordered(
            subs.iter()
                .enumerate()
                .map(|(i, fs)| (s(fs), (subs.len() - i) as f64))
                .collect(),
        )
    }

    #[test]
    fn precision_counts_exact_matches_only() {
        let rel_owned = [s(&[0, 1])];
        let rel: Vec<&Subspace> = rel_owned.iter().collect();
        // {0,1,2} is a superset, NOT an exact match.
        let exp = ranking(&[&[0, 1, 2], &[0, 1]]);
        assert!((precision(&rel, &exp) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_ranking_has_ap_one() {
        let rel_owned = [s(&[0, 1]), s(&[2, 3])];
        let rel: Vec<&Subspace> = rel_owned.iter().collect();
        let exp = ranking(&[&[0, 1], &[2, 3], &[4, 5]]);
        assert!((average_precision(&rel, &exp) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ap_penalizes_late_hits() {
        let rel_owned = [s(&[0, 1])];
        let rel: Vec<&Subspace> = rel_owned.iter().collect();
        let first = average_precision(&rel, &ranking(&[&[0, 1], &[2, 3]]));
        let second = average_precision(&rel, &ranking(&[&[2, 3], &[0, 1]]));
        let third = average_precision(&rel, &ranking(&[&[2, 3], &[4, 5], &[0, 1]]));
        assert!((first - 1.0).abs() < 1e-12);
        assert!((second - 0.5).abs() < 1e-12);
        assert!((third - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ap_textbook_example() {
        // Relevant at positions 1, 3, 5 (1-based) of five returned:
        // AP = (1/1 + 2/3 + 3/5) / 3.
        let rel_owned = [s(&[0]), s(&[2]), s(&[4])];
        let rel: Vec<&Subspace> = rel_owned.iter().collect();
        let exp = ranking(&[&[0], &[1], &[2], &[3], &[4]]);
        let want = (1.0 + 2.0 / 3.0 + 3.0 / 5.0) / 3.0;
        assert!((average_precision(&rel, &exp) - want).abs() < 1e-12);
    }

    #[test]
    fn ap_divides_by_rel_count_when_misses() {
        // One of two relevant subspaces never returned.
        let rel_owned = [s(&[0]), s(&[9])];
        let rel: Vec<&Subspace> = rel_owned.iter().collect();
        let exp = ranking(&[&[0], &[1]]);
        assert!((average_precision(&rel, &exp) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recall_basics() {
        let rel_owned = [s(&[0]), s(&[9])];
        let rel: Vec<&Subspace> = rel_owned.iter().collect();
        assert!((recall(&rel, &ranking(&[&[0], &[1]])) - 0.5).abs() < 1e-12);
        assert_eq!(recall(&rel, &ranking(&[&[1], &[2]])), 0.0);
        assert!((recall(&rel, &ranking(&[&[9], &[0]])) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn map_and_mean_recall_aggregate() {
        let rel_a = [s(&[0])];
        let rel_b = [s(&[1])];
        let exp_a = ranking(&[&[0]]); // AP = 1
        let exp_b = ranking(&[&[2], &[1]]); // AP = 0.5
        let batch = vec![
            (rel_a.iter().collect::<Vec<_>>(), &exp_a),
            (rel_b.iter().collect::<Vec<_>>(), &exp_b),
        ];
        assert!((map(&batch) - 0.75).abs() < 1e-12);
        assert!((mean_recall(&batch) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        let rel_owned = [s(&[0])];
        let rel: Vec<&Subspace> = rel_owned.iter().collect();
        let empty = RankedSubspaces::default();
        assert_eq!(precision(&rel, &empty), 0.0);
        assert_eq!(average_precision(&rel, &empty), 0.0);
        assert_eq!(map(&[]), 0.0);
        assert_eq!(mean_recall(&[]), 0.0);
        let no_rel: Vec<&Subspace> = Vec::new();
        assert_eq!(average_precision(&no_rel, &ranking(&[&[0]])), 0.0);
    }
}
