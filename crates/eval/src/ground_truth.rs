//! Ground-truth derivation for the full-space dataset family — the
//! paper's own §3.2 procedure.
//!
//! The real datasets' ground truth was **derived, not given**: the paper
//! runs an exhaustive LOF search over every subspace of 2, 3 and 4
//! dimensions and records, per outlier and per dimensionality, the
//! top-scoring subspace. Each outlier thus ends up with exactly three
//! relevant subspaces (one per dimensionality) — Table 1's "3 (1 per
//! dimensionality)".

use anomex_core::SubspaceScorer;
use anomex_dataset::subspace::enumerate_subspaces;
use anomex_dataset::{Dataset, GroundTruth, Subspace};
use anomex_detectors::{Detector, Lof};

/// Derives the ground truth for `outliers` of `dataset` by exhaustive
/// LOF search over all subspaces of each dimensionality in `dims`,
/// keeping the top standardized-score subspace per outlier per
/// dimensionality.
///
/// Uses LOF with the paper's `k = 15`.
///
/// # Panics
/// Panics when `outliers` contains an out-of-range row or a
/// dimensionality exceeds the dataset's feature count.
#[must_use]
pub fn derive_fullspace_ground_truth(
    dataset: &Dataset,
    outliers: &[usize],
    dims: &[usize],
) -> GroundTruth {
    let lof = Lof::new(15).expect("k = 15 is valid");
    derive_ground_truth_with(dataset, outliers, dims, &lof)
}

/// Like [`derive_fullspace_ground_truth`] but with an arbitrary detector
/// (exposed for ablations).
#[must_use]
pub fn derive_ground_truth_with(
    dataset: &Dataset,
    outliers: &[usize],
    dims: &[usize],
    detector: &dyn Detector,
) -> GroundTruth {
    assert!(
        outliers.iter().all(|&p| p < dataset.n_rows()),
        "outlier row out of range"
    );
    let d = dataset.n_features();
    // An exhaustive scan touches each subspace exactly once: skip the cache.
    let scorer = SubspaceScorer::without_cache(dataset, detector);
    let mut gt = GroundTruth::new();

    for &dim in dims {
        assert!(dim >= 1 && dim <= d, "dimensionality {dim} out of range");
        let mut best: Vec<(f64, Option<Subspace>)> =
            vec![(f64::NEG_INFINITY, None); outliers.len()];
        // Stream the enumeration in batches to bound memory while still
        // exploiting the parallel scorer.
        let mut iter = enumerate_subspaces(d, dim).peekable();
        let batch_size = 2048;
        while iter.peek().is_some() {
            let batch: Vec<Subspace> = iter.by_ref().take(batch_size).collect();
            let scores = scorer.point_scores_batch(&batch, outliers);
            for (s, row) in batch.iter().zip(&scores) {
                for (slot, &v) in best.iter_mut().zip(row) {
                    if v > slot.0 {
                        *slot = (v, Some(s.clone()));
                    }
                }
            }
        }
        for (&p, (_, sub)) in outliers.iter().zip(best) {
            gt.add(p, sub.expect("at least one subspace exists per dim"));
        }
    }
    gt
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Tiny 5-feature dataset where the planted outlier deviates hardest
    /// in features {1, 3}.
    fn planted() -> (Dataset, usize) {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 120;
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        for _ in 0..n {
            let t: f64 = rng.gen_range(0.1..0.9);
            rows.push(vec![
                rng.gen_range(0.0..1.0),
                t + rng.gen_range(-0.02..0.02),
                rng.gen_range(0.0..1.0),
                t + rng.gen_range(-0.02..0.02),
                rng.gen_range(0.0..1.0),
            ]);
        }
        rows.push(vec![0.5, 0.2, 0.5, 0.8, 0.5]);
        (Dataset::from_rows(rows).unwrap(), n)
    }

    #[test]
    fn finds_best_subspace_per_dim() {
        let (ds, p) = planted();
        let gt = derive_fullspace_ground_truth(&ds, &[p], &[2, 3]);
        assert_eq!(gt.n_outliers(), 1);
        let rels = gt.relevant_for(p);
        assert_eq!(rels.len(), 2, "one per dimensionality: {rels:?}");
        let dims: Vec<usize> = rels.iter().map(Subspace::dim).collect();
        assert!(dims.contains(&2) && dims.contains(&3));
        // The 2d best must be the planted pair.
        let two = rels.iter().find(|s| s.dim() == 2).unwrap();
        assert_eq!(two, &Subspace::new([1usize, 3]), "got {two}");
        // The 3d best must contain it.
        let three = rels.iter().find(|s| s.dim() == 3).unwrap();
        assert!(
            three.is_superset_of(two),
            "3d best {three} should extend {two}"
        );
    }

    #[test]
    fn multiple_outliers_each_get_subspaces() {
        let (ds, p) = planted();
        // Treat two arbitrary rows as outliers; both must receive exactly
        // one subspace per dimensionality even if they are unremarkable.
        let gt = derive_fullspace_ground_truth(&ds, &[p, 3], &[2]);
        assert_eq!(gt.relevant_for(p).len(), 1);
        assert_eq!(gt.relevant_for(3).len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_outlier() {
        let (ds, _) = planted();
        let _ = derive_fullspace_ground_truth(&ds, &[9999], &[2]);
    }

    #[test]
    fn deterministic() {
        let (ds, p) = planted();
        let a = derive_fullspace_ground_truth(&ds, &[p], &[2]);
        let b = derive_fullspace_ground_truth(&ds, &[p], &[2]);
        assert_eq!(a, b);
    }
}
