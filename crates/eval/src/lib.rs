//! # anomex-eval
//!
//! The evaluation framework of the reproduced paper: the MAP / Mean
//! Recall metrics of §3.3, the exhaustive-LOF ground-truth derivation for
//! the full-space dataset family (§3.2), the 12-pipeline runner, and the
//! experiment harness that regenerates **every table and figure** of the
//! paper's evaluation section (Table 1, Table 2, Figures 8–11).
//!
//! The `anomex-eval` binary drives it:
//!
//! ```text
//! anomex-eval table1           # dataset characteristics (Table 1)
//! anomex-eval fig8             # relevant-subspace dimensionalities
//! anomex-eval fig9  [--fast]   # MAP of Beam & RefOut pipelines
//! anomex-eval fig10 [--fast]   # MAP of HiCS & LookOut pipelines
//! anomex-eval fig11 [--fast]   # pipeline runtimes
//! anomex-eval table2 [--fast]  # effectiveness/efficiency trade-offs
//! anomex-eval recommend [--fast]  # profile-driven recommender vs fixed grid
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod datasets;
pub mod experiment;
pub mod ground_truth;
pub mod metrics;
pub mod overlap;
pub mod plot;
pub mod recommend;
pub mod report;
pub mod runner;
pub mod tradeoff;

pub use datasets::{TestbedDataset, TestbedFamily};
pub use metrics::{average_precision, map, mean_recall, precision};
pub use recommend::{validate_recommender, RecommenderRow, RecommenderValidation};
pub use runner::{CellResult, ResultTable};
