//! Table 2 — effectiveness/efficiency trade-offs of detection and
//! explanation pipelines (paper §4.3).
//!
//! For every explanation dimensionality × relevant-feature-ratio bucket,
//! the table reports the point-explanation pipeline and the summarization
//! pipeline with the best Pareto trade-off: highest MAP first, faster
//! runtime as tie-breaker (MAP compared at 2-decimal granularity, like
//! the paper's reading of its own figures). Buckets with no effective
//! pipeline stay empty — mirroring the paper's blank cells.

use crate::runner::{CellResult, ResultTable};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One winner entry: pipeline label and its (mean) MAP and runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct Winner {
    /// `"Explainer+Detector"`.
    pub label: String,
    /// Mean MAP across the bucket's datasets.
    pub map: f64,
    /// Mean seconds across the bucket's datasets.
    pub seconds: f64,
}

/// The Table 2 matrix: `(dim, ratio-bucket-name) → (point winner,
/// summary winner)`.
pub type TradeoffMatrix = BTreeMap<(usize, String), (Option<Winner>, Option<Winner>)>;

/// Ratio bucket of a dataset name, following the paper's Table 2 columns.
/// The three full-space datasets share the `100%` bucket.
#[must_use]
pub fn ratio_bucket(dataset: &str) -> Option<&'static str> {
    match dataset {
        "HiCS-14d" => Some("35%"),
        "HiCS-23d" => Some("21%"),
        "HiCS-39d" => Some("12%"),
        "HiCS-70d" => Some("7%"),
        "HiCS-100d" => Some("5%"),
        name if name.contains("(A)") || name.contains("(B)") || name.contains("(C)") => {
            Some("100%")
        }
        _ => None,
    }
}

/// Whether an explainer label belongs to the point-explanation family.
fn is_point_explainer(explainer: &str) -> bool {
    explainer.starts_with("Beam") || explainer == "RefOut"
}

/// Aggregates cells into per-bucket pipeline means and picks winners.
#[must_use]
pub fn build(point_table: &ResultTable, summary_table: &ResultTable) -> TradeoffMatrix {
    let mut matrix = TradeoffMatrix::new();
    // (dim, bucket, label) → (Σmap, Σsec, n)
    let mut agg: BTreeMap<(usize, String, String), (f64, f64, usize)> = BTreeMap::new();
    let all: Vec<&CellResult> = point_table
        .cells
        .iter()
        .chain(&summary_table.cells)
        .filter(|c| !c.skipped)
        .collect();
    for c in &all {
        let Some(bucket) = ratio_bucket(&c.dataset) else {
            continue;
        };
        let label = format!("{}+{}", c.explainer, c.detector);
        let e = agg
            .entry((c.dim, bucket.to_string(), label))
            .or_insert((0.0, 0.0, 0));
        e.0 += c.map;
        e.1 += c.seconds;
        e.2 += 1;
    }

    for ((dim, bucket, label), (m, s, n)) in agg {
        let winner = Winner {
            map: m / n as f64,
            seconds: s / n as f64,
            label: label.clone(),
        };
        let entry = matrix.entry((dim, bucket)).or_insert((None, None));
        let explainer = label.split('+').next().unwrap_or("");
        let slot = if is_point_explainer(explainer) {
            &mut entry.0
        } else {
            &mut entry.1
        };
        let better = match slot {
            None => true,
            Some(current) => pareto_better(&winner, current),
        };
        if better && winner.map > 0.0 {
            *slot = Some(winner);
        }
    }
    matrix
}

/// Paper-style Pareto comparison: MAP at 2-decimal granularity first,
/// then faster runtime.
fn pareto_better(a: &Winner, b: &Winner) -> bool {
    let (ma, mb) = ((a.map * 100.0).round(), (b.map * 100.0).round());
    if ma != mb {
        return ma > mb;
    }
    a.seconds < b.seconds
}

/// Renders the matrix as the paper lays it out: rows = explanation
/// dimensionality, columns = relevant-feature ratio, two pipeline lines
/// per cell (point explainer over summarizer).
#[must_use]
pub fn render(matrix: &TradeoffMatrix) -> String {
    let dims: Vec<usize> = {
        let mut v: Vec<usize> = matrix.keys().map(|(d, _)| *d).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let buckets = ["100%", "35%", "21%", "12%", "7%", "5%"];
    let present: Vec<&str> = buckets
        .iter()
        .copied()
        .filter(|b| matrix.keys().any(|(_, bb)| bb == b))
        .collect();

    let mut out = String::new();
    let mut header = format!("{:<5}", "dim");
    for b in &present {
        let _ = write!(header, " {:>24}", b);
    }
    let _ = writeln!(out, "{header}");
    for d in dims {
        for (row, pick) in [("point", 0usize), ("summary", 1)] {
            let mut line = format!(
                "{:<5}",
                if pick == 0 {
                    format!("{d}d")
                } else {
                    String::new()
                }
            );
            for b in &present {
                let cell = matrix.get(&(d, (*b).to_string()));
                let text = match cell {
                    Some((p, s)) => {
                        let w = if pick == 0 { p } else { s };
                        match w {
                            Some(w) => format!("{} ({:.2})", w.label, w.map),
                            None => "—".to_string(),
                        }
                    }
                    None => "—".to_string(),
                };
                let _ = write!(line, " {:>24}", text);
            }
            let _ = writeln!(out, "{line}");
            let _ = row;
        }
    }
    out
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    fn cell(ds: &str, det: &str, expl: &str, dim: usize, map: f64, sec: f64) -> CellResult {
        CellResult {
            dataset: ds.into(),
            detector: det.into(),
            explainer: expl.into(),
            dim,
            map,
            mean_recall: map,
            seconds: sec,
            evaluations: 1,
            cache_hits: 0,
            cache_hit_rate: 0.0,
            peak_cache_entries: 1,
            n_points: 5,
            skipped: false,
            skip_reason: None,
        }
    }

    #[test]
    fn buckets_follow_table2() {
        assert_eq!(ratio_bucket("HiCS-14d"), Some("35%"));
        assert_eq!(ratio_bucket("Breast-like (A)"), Some("100%"));
        assert_eq!(ratio_bucket("Electricity-like (C)"), Some("100%"));
        assert_eq!(ratio_bucket("unknown"), None);
    }

    #[test]
    fn picks_pareto_winner_per_family() {
        let mut p = ResultTable::new("fig9");
        p.cells
            .push(cell("HiCS-14d", "LOF", "Beam_FX", 2, 0.9, 2.0));
        p.cells.push(cell("HiCS-14d", "LOF", "RefOut", 2, 0.9, 1.0)); // same MAP, faster
        p.cells
            .push(cell("HiCS-14d", "iForest", "Beam_FX", 2, 0.5, 0.1));
        let mut s = ResultTable::new("fig10");
        s.cells
            .push(cell("HiCS-14d", "LOF", "LookOut", 2, 0.8, 1.0));
        s.cells
            .push(cell("HiCS-14d", "LOF", "HiCS_FX", 2, 0.95, 5.0)); // higher MAP wins
        let m = build(&p, &s);
        let (point, summary) = &m[&(2, "35%".to_string())];
        assert_eq!(point.as_ref().unwrap().label, "RefOut+LOF");
        assert_eq!(summary.as_ref().unwrap().label, "HiCS_FX+LOF");
    }

    #[test]
    fn zero_map_yields_empty_cell() {
        let mut p = ResultTable::new("fig9");
        p.cells
            .push(cell("HiCS-39d", "LOF", "Beam_FX", 5, 0.0, 1.0));
        let s = ResultTable::new("fig10");
        let m = build(&p, &s);
        let (point, summary) = &m[&(5, "12%".to_string())];
        assert!(point.is_none());
        assert!(summary.is_none());
    }

    #[test]
    fn aggregates_fullspace_bucket_across_datasets() {
        let mut p = ResultTable::new("fig9");
        p.cells
            .push(cell("Breast-like (A)", "LOF", "Beam_FX", 2, 1.0, 1.0));
        p.cells
            .push(cell("BreastDiag-like (B)", "LOF", "Beam_FX", 2, 0.5, 3.0));
        let s = ResultTable::new("fig10");
        let m = build(&p, &s);
        let (point, _) = &m[&(2, "100%".to_string())];
        let w = point.as_ref().unwrap();
        assert!((w.map - 0.75).abs() < 1e-12);
        assert!((w.seconds - 2.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_layout() {
        let mut p = ResultTable::new("fig9");
        p.cells
            .push(cell("HiCS-14d", "LOF", "Beam_FX", 2, 0.9, 2.0));
        let s = ResultTable::new("fig10");
        let text = render(&build(&p, &s));
        assert!(text.contains("35%"));
        assert!(text.contains("Beam_FX+LOF"));
        assert!(text.contains("2d"));
    }
}
