//! Property-based tests for the evaluation metrics (§3.3) and the AUC
//! used by the overlap analysis.

use anomex_core::RankedSubspaces;
use anomex_dataset::Subspace;
use anomex_eval::metrics::{average_precision, mean_recall, precision, recall};
use anomex_eval::overlap::auc;
use anomex_eval::{map, CellResult, ResultTable};
use proptest::prelude::*;

fn subspace() -> impl Strategy<Value = Subspace> {
    prop::collection::vec(0usize..10, 1..4).prop_map(Subspace::new)
}

fn ranking() -> impl Strategy<Value = RankedSubspaces> {
    prop::collection::vec((subspace(), -5.0f64..5.0), 0..15).prop_map(RankedSubspaces::from_scored)
}

fn relevant_set() -> impl Strategy<Value = Vec<Subspace>> {
    prop::collection::vec(subspace(), 1..4).prop_map(|mut v| {
        v.sort();
        v.dedup();
        v
    })
}

proptest! {
    /// All §3.3 metrics stay in [0, 1].
    #[test]
    fn metrics_in_unit_interval(rel in relevant_set(), exp in ranking()) {
        let rel_refs: Vec<&Subspace> = rel.iter().collect();
        for v in [
            precision(&rel_refs, &exp),
            average_precision(&rel_refs, &exp),
            recall(&rel_refs, &exp),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }

    /// AveP = 1 ⟺ the explanation starts with exactly the relevant set.
    #[test]
    fn perfect_prefix_gives_ap_one(rel in relevant_set()) {
        let entries: Vec<(Subspace, f64)> = rel
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), (rel.len() - i) as f64))
            .collect();
        let exp = RankedSubspaces::from_ordered(entries);
        let rel_refs: Vec<&Subspace> = rel.iter().collect();
        prop_assert!((average_precision(&rel_refs, &exp) - 1.0).abs() < 1e-12);
        prop_assert!((recall(&rel_refs, &exp) - 1.0).abs() < 1e-12);
    }

    /// Appending irrelevant junk after the hits never changes AveP
    /// (only positions of hits matter) and never changes recall.
    #[test]
    fn junk_suffix_preserves_ap(rel in relevant_set()) {
        let mut entries: Vec<(Subspace, f64)> = rel
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), 100.0 - i as f64))
            .collect();
        let rel_refs: Vec<&Subspace> = rel.iter().collect();
        let clean = RankedSubspaces::from_ordered(entries.clone());
        let ap_clean = average_precision(&rel_refs, &clean);
        // Junk uses feature ids ≥ 100 → disjoint from any relevant set.
        for j in 0..5usize {
            entries.push((Subspace::new([100 + j, 200 + j]), -(j as f64)));
        }
        let dirty = RankedSubspaces::from_ordered(entries);
        prop_assert!((average_precision(&rel_refs, &dirty) - ap_clean).abs() < 1e-12);
        prop_assert!((recall(&rel_refs, &dirty) - recall(&rel_refs, &clean)).abs() < 1e-12);
    }

    /// Demoting a hit (moving it later) never increases AveP.
    #[test]
    fn demotion_monotonicity(rel in subspace(), junk_before in 0usize..8) {
        let rel_refs = [&rel];
        let make = |pos: usize| {
            let mut entries = Vec::new();
            for j in 0..pos {
                entries.push((Subspace::new([100 + j]), 100.0 - j as f64));
            }
            entries.push((rel.clone(), 50.0));
            RankedSubspaces::from_ordered(entries)
        };
        let early = average_precision(&rel_refs, &make(junk_before));
        let late = average_precision(&rel_refs, &make(junk_before + 1));
        prop_assert!(late <= early + 1e-12);
    }

    /// MAP and Mean Recall are means: bounded by the extremes of the
    /// per-point values.
    #[test]
    fn map_is_a_mean(rels in prop::collection::vec(relevant_set(), 1..5),
                     exps in prop::collection::vec(ranking(), 5)) {
        let batch: Vec<(Vec<&Subspace>, &RankedSubspaces)> = rels
            .iter()
            .zip(&exps)
            .map(|(r, e)| (r.iter().collect(), e))
            .collect();
        let aps: Vec<f64> = batch.iter().map(|(r, e)| average_precision(r, e)).collect();
        let m = map(&batch);
        let lo = aps.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = aps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-12 && m <= hi + 1e-12);
        let mr = mean_recall(&batch);
        prop_assert!((0.0..=1.0).contains(&mr));
    }

    /// AUC flips under score negation: AUC(-s) = 1 − AUC(s).
    #[test]
    fn auc_antisymmetry(scores in prop::collection::vec(-10.0f64..10.0, 4..30),
                        pos_mask in prop::collection::vec(any::<bool>(), 4..30)) {
        let n = scores.len().min(pos_mask.len());
        let scores = &scores[..n];
        let positives: Vec<usize> = (0..n).filter(|&i| pos_mask[i]).collect();
        let neg: Vec<f64> = scores.iter().map(|s| -s).collect();
        let a = auc(scores, &positives);
        let b = auc(&neg, &positives);
        prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b}");
        prop_assert!((0.0..=1.0).contains(&a));
    }

    /// Result tables survive a JSON round trip for arbitrary cell data.
    #[test]
    fn result_table_json_roundtrip(maps in prop::collection::vec(0.0f64..1.0, 1..6)) {
        let mut t = ResultTable::new("prop");
        for (i, m) in maps.iter().enumerate() {
            t.cells.push(CellResult {
                dataset: format!("ds{i}"),
                detector: "LOF".into(),
                explainer: "Beam_FX".into(),
                dim: 2 + i,
                map: *m,
                mean_recall: m * 0.5,
                seconds: i as f64,
                evaluations: i,
                cache_hits: i * 2,
                cache_hit_rate: if i > 0 { 0.5 } else { 0.0 },
                peak_cache_entries: i,
                n_points: 5,
                skipped: false,
                skip_reason: None,
            });
        }
        let back = ResultTable::from_json(&t.to_json()).unwrap();
        prop_assert_eq!(back, t);
    }
}
