//! Quality-side ablations for DESIGN.md §5: how much do the z-score
//! standardization, the Beam output variant and the HiCS test choice
//! matter for MAP (not runtime)?
//!
//! ```text
//! cargo run --release -p anomex-bench --bin ablation_quality
//! ```

use anomex_core::explainer::{PointExplainer, SummaryExplainer};
use anomex_core::hics::Hics;
use anomex_core::scoring::SubspaceScorer;
use anomex_core::Beam;
use anomex_dataset::gen::hics::{generate_hics, HicsPreset};
use anomex_dataset::Subspace;
use anomex_eval::metrics;
use anomex_stats::tests::TwoSampleTest;

/// MAP of per-point explanations against planted truth.
fn point_map(
    g: &anomex_dataset::gen::Generated,
    scorer: &SubspaceScorer<'_>,
    explainer: &dyn PointExplainer,
    dim: usize,
) -> f64 {
    let pois = g.ground_truth.points_explained_at_dim(dim);
    let explanations: Vec<_> = pois
        .iter()
        .map(|&p| explainer.explain(scorer, p, dim))
        .collect();
    let per_point: Vec<(Vec<&Subspace>, &_)> = pois
        .iter()
        .zip(&explanations)
        .map(|(&p, e)| (g.ground_truth.relevant_for_at_dim(p, dim), e))
        .collect();
    metrics::map(&per_point)
}

fn summary_map(
    g: &anomex_dataset::gen::Generated,
    scorer: &SubspaceScorer<'_>,
    explainer: &dyn SummaryExplainer,
    dim: usize,
) -> f64 {
    let pois = g.ground_truth.points_explained_at_dim(dim);
    let summary = explainer.summarize(scorer, &pois, dim);
    let per_point: Vec<(Vec<&Subspace>, &_)> = pois
        .iter()
        .map(|&p| (g.ground_truth.relevant_for_at_dim(p, dim), &summary))
        .collect();
    metrics::map(&per_point)
}

fn main() {
    let g = generate_hics(HicsPreset::D23, 42);
    let lof = anomex_detectors::Lof::new(15).expect("valid k");
    println!(
        "quality ablations on {} (Beam width 30, LOF)\n",
        HicsPreset::D23.name()
    );

    // --- Ablation 1: z-score standardization (paper §2.2) ---------------
    let beam = Beam::new().beam_width(30);
    println!("{:<44} {:>6} {:>6}", "ablation", "2d", "3d");
    let std_scorer = SubspaceScorer::new(&g.dataset, &lof);
    let raw_scorer = SubspaceScorer::new(&g.dataset, &lof).with_raw_scores();
    println!(
        "{:<44} {:>6.2} {:>6.2}",
        "Beam + standardized scores (default)",
        point_map(&g, &std_scorer, &beam, 2),
        point_map(&g, &std_scorer, &beam, 3),
    );
    println!(
        "{:<44} {:>6.2} {:>6.2}",
        "Beam + raw detector scores",
        point_map(&g, &raw_scorer, &beam, 2),
        point_map(&g, &raw_scorer, &beam, 3),
    );

    // --- Ablation 2: Beam_FX vs classic global list ---------------------
    let classic = Beam::new().beam_width(30).fixed_dim(false);
    println!(
        "{:<44} {:>6.2} {:>6.2}",
        "Beam classic (mixed-dim global list)",
        point_map(&g, &std_scorer, &classic, 2),
        point_map(&g, &std_scorer, &classic, 3),
    );

    // --- Ablation 3: HiCS contrast test (footnote 2) --------------------
    for (name, test) in [
        (
            "HiCS_FX + KS contrast (default)",
            TwoSampleTest::KolmogorovSmirnov,
        ),
        ("HiCS_FX + Welch contrast", TwoSampleTest::Welch),
    ] {
        let hics = Hics::new()
            .monte_carlo_iterations(50)
            .candidate_cutoff(200)
            .statistical_test(test)
            .seed(42);
        println!(
            "{:<44} {:>6.2} {:>6.2}",
            name,
            summary_map(&g, &std_scorer, &hics, 2),
            summary_map(&g, &std_scorer, &hics, 3),
        );
    }

    println!(
        "\nsubspace evaluations: standardized scorer {}, raw scorer {}",
        std_scorer.evaluations(),
        raw_scorer.evaluations()
    );
}
