//! Engine & score-cache benchmarks.
//!
//! Two questions the `ExplanationEngine` refactor raises:
//!
//! 1. How much does keeping the cache warm across a multi-dimensionality
//!    sweep actually save? (`engine_sweep`: cold vs warm.)
//! 2. Does sharding the cache matter under concurrent hits, or would a
//!    single mutex do? (`cache_hit_path`: 1 shard vs 16 over a
//!    pre-warmed `score_batch`.)

use anomex_bench::{bench_dataset, bench_pois};
use anomex_core::cache::ScoreCache;
use anomex_core::engine::{ExplanationEngine, RunSpec};
use anomex_core::pipeline::ExplainerKind;
use anomex_core::scoring::SubspaceScorer;
use anomex_core::Beam;
use anomex_dataset::gen::hics::HicsPreset;
use anomex_dataset::subspace::enumerate_subspaces;
use anomex_dataset::Subspace;
use anomex_detectors::Lof;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
}

/// Cold vs warm multi-dimensionality sweeps: the cold variant builds a
/// fresh engine per iteration (every subspace recomputed), the warm one
/// reuses a pre-filled cache and pays only the cache-lookup cost.
fn engine_sweep(c: &mut Criterion) {
    let lof = Lof::new(15).unwrap();
    let ds = bench_dataset(HicsPreset::D14);
    let pois = bench_pois(HicsPreset::D14, 2, 3);
    let beam = ExplainerKind::Point(Box::new(Beam::new().beam_width(10)));
    let spec = RunSpec::new(pois, [2usize, 3]);

    let mut group = c.benchmark_group("engine_sweep");
    group.bench_function("cold/D14-2d3d", |b| {
        b.iter(|| ExplanationEngine::new(&ds, &lof).run(&beam, &spec))
    });

    let warm_cache = Arc::new(ScoreCache::new());
    let warm = ExplanationEngine::with_cache(&ds, &lof, Arc::clone(&warm_cache));
    let _ = warm.run(&beam, &spec); // fill once, outside measurement
    group.bench_function("warm/D14-2d3d", |b| b.iter(|| warm.run(&beam, &spec)));
    group.finish();
}

/// Sharded vs single-lock cache under the concurrent all-hits path:
/// `score_batch` fans all 2d pairs of the 23-feature dataset out across
/// cores against a fully pre-warmed cache, so the measurement is pure
/// lock traffic.
fn cache_hit_path(c: &mut Criterion) {
    let lof = Lof::new(15).unwrap();
    let ds = bench_dataset(HicsPreset::D23);
    let pairs: Vec<Subspace> = enumerate_subspaces(ds.n_features(), 2).collect();

    let mut group = c.benchmark_group("cache_hit_path");
    for shards in [1usize, 16] {
        let cache = Arc::new(ScoreCache::builder().shards(shards).build());
        let scorer = SubspaceScorer::with_cache(&ds, &lof, Arc::clone(&cache));
        let _ = scorer.score_batch(&pairs); // pre-warm: all misses paid here
        group.bench_with_input(
            BenchmarkId::new("score_batch_warm", format!("{shards}-shard")),
            &shards,
            |b, _| b.iter(|| scorer.score_batch(&pairs)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = engine_sweep, cache_hit_path
}
criterion_main!(benches);
