//! Neighbor-backend benchmarks: the sublinear-search question.
//!
//! One operation — build the full kNN table of a dataset — under the
//! three concrete [`NeighborBackend`]s:
//!
//! * `exact`  — blocked norm-trick kernel, O(N²·d), the baseline every
//!   committed result is pinned to;
//! * `kdtree` — median-split kd-tree build + per-row pruned queries,
//!   ~O(N log N) at low dimension, exact distances;
//! * `approx` — multi-table signed-random-projection LSH (oversized
//!   buckets re-split about their local mean) with an exact rerank of
//!   the candidate union, sublinear candidate sets at high dimension,
//!   approximate.
//!
//! Grid: N ∈ {1 000, 10 000, 100 000} × d ∈ {2, 5, 16}, k = 15 (the
//! paper's LOF neighbourhood). Two cells are omitted deliberately —
//! the omission is part of the result, not a silent cap:
//!
//! * `exact` at N = 100 000: the O(N²·d) scan takes minutes per
//!   sample; the crossover against kd-tree/LSH is already decided two
//!   orders of magnitude earlier (see `BENCH_knn_backends.json`).
//! * `kdtree` at d = 16, N = 100 000: kd-tree pruning collapses in
//!   high dimension (every leaf cell touches the query ball), so the
//!   query degenerates toward the exhaustive scan it was meant to
//!   replace. `NeighborBackend::Auto` routes this shape to `approx`.
//!
//! `scripts/bench_snapshot.sh` distills the same grid into
//! `BENCH_knn_backends.json` and gates regressions against it.

use anomex_dataset::Dataset;
use anomex_detectors::knn::{knn_table_with, NeighborBackend};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const K: usize = 15;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
}

/// Uniform cube: the neutral input. Cluster geometry skews the
/// comparison in either direction — tight isolated blobs collapse LSH
/// sign codes to "which blob" (buckets = blobs, rerank degenerates),
/// while axis-aligned structure flatters kd-tree pruning. Uniform data
/// gives every backend its asymptotic behaviour and nothing else.
fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_rows(
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect::<Vec<Vec<f64>>>(),
    )
    .expect("well-formed")
}

/// exact vs kdtree vs approx kNN-table builds across the N × d grid.
fn knn_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_backends");
    for n in [1_000usize, 10_000, 100_000] {
        for d in [2usize, 5, 16] {
            let ds = random_dataset(n, d, (n * 31 + d) as u64);
            let m = ds.full_matrix();
            let label = format!("N{n}-d{d}");

            if n <= 10_000 {
                group.bench_with_input(BenchmarkId::new("exact", &label), &m, |b, m| {
                    b.iter(|| knn_table_with(m, K, NeighborBackend::Exact))
                });
            }
            if !(d == 16 && n == 100_000) {
                group.bench_with_input(BenchmarkId::new("kdtree", &label), &m, |b, m| {
                    b.iter(|| knn_table_with(m, K, NeighborBackend::KdTree))
                });
            }
            group.bench_with_input(BenchmarkId::new("approx", &label), &m, |b, m| {
                b.iter(|| knn_table_with(m, K, NeighborBackend::Approx))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = knn_backends
}
criterion_main!(benches);
