//! Ablation benches for the design choices called out in DESIGN.md §5
//! (runtime side; the quality side is printed by the `ablation-quality`
//! binary of this crate):
//!
//! * score-cache on/off,
//! * parallel vs sequential candidate scoring,
//! * HiCS contrast with Welch vs KS,
//! * Beam classic (global list) vs `Beam_FX`.

use anomex_bench::{bench_dataset, bench_pois};
use anomex_core::explainer::PointExplainer;
use anomex_core::hics::{sort_features, Hics};
use anomex_core::scoring::SubspaceScorer;
use anomex_core::Beam;
use anomex_dataset::gen::hics::HicsPreset;
use anomex_dataset::subspace::enumerate_subspaces;
use anomex_dataset::Subspace;
use anomex_detectors::Lof;
use anomex_stats::tests::TwoSampleTest;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
}

/// Cache ablation: Beam explains five points that share their stage-1
/// enumeration; with the cache the repeats are free.
fn ablation_cache(c: &mut Criterion) {
    let ds = bench_dataset(HicsPreset::D14);
    let lof = Lof::new(15).unwrap();
    let beam = Beam::new().beam_width(10);
    let pois = bench_pois(HicsPreset::D14, 2, 5);
    let mut group = c.benchmark_group("ablation_cache");
    group.bench_function("cached", |b| {
        b.iter(|| {
            let scorer = SubspaceScorer::new(&ds, &lof);
            for &p in &pois {
                let _ = beam.explain(&scorer, p, 2);
            }
        })
    });
    group.bench_function("uncached", |b| {
        b.iter(|| {
            let scorer = SubspaceScorer::without_cache(&ds, &lof);
            for &p in &pois {
                let _ = beam.explain(&scorer, p, 2);
            }
        })
    });
    group.finish();
}

/// Parallel fan-out ablation: scoring all C(23,2) subspaces through the
/// parallel batch path vs a sequential loop.
fn ablation_parallel(c: &mut Criterion) {
    let ds = bench_dataset(HicsPreset::D23);
    let lof = Lof::new(15).unwrap();
    let subs: Vec<Subspace> = enumerate_subspaces(ds.n_features(), 2).collect();
    let mut group = c.benchmark_group("ablation_parallel");
    group.bench_function("par_batch", |b| {
        b.iter(|| {
            let scorer = SubspaceScorer::without_cache(&ds, &lof);
            scorer.score_batch(&subs)
        })
    });
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let scorer = SubspaceScorer::without_cache(&ds, &lof);
            subs.iter().map(|s| scorer.scores(s)).collect::<Vec<_>>()
        })
    });
    group.finish();
}

/// HiCS statistical-test ablation (paper footnote 2): Welch vs KS
/// contrast cost on 2d and 5d subspaces.
fn ablation_hics_test(c: &mut Criterion) {
    let ds = bench_dataset(HicsPreset::D39);
    let sorted = sort_features(&ds);
    let mut group = c.benchmark_group("ablation_hics_test");
    for (name, test) in [
        ("welch", TwoSampleTest::Welch),
        ("ks", TwoSampleTest::KolmogorovSmirnov),
    ] {
        let hics = Hics::new()
            .monte_carlo_iterations(50)
            .statistical_test(test);
        for dim in [2usize, 5] {
            let sub = Subspace::new((0..dim).collect::<Vec<_>>());
            group.bench_with_input(BenchmarkId::new(name, format!("{dim}d")), &sub, |b, sub| {
                b.iter(|| hics.contrast(&ds, &sorted, sub))
            });
        }
    }
    group.finish();
}

/// Beam global-list vs fixed-dim variant: identical search cost, the
/// variants differ only in which list they return — the bench verifies
/// the fairness variant is free.
fn ablation_beam_fx(c: &mut Criterion) {
    let ds = bench_dataset(HicsPreset::D14);
    let lof = Lof::new(15).unwrap();
    let point = bench_pois(HicsPreset::D14, 3, 1)[0];
    let mut group = c.benchmark_group("ablation_beam_fx");
    for (name, fx) in [("classic", false), ("fx", true)] {
        let beam = Beam::new().beam_width(10).fixed_dim(fx);
        group.bench_function(name, |b| {
            b.iter(|| {
                let scorer = SubspaceScorer::new(&ds, &lof);
                beam.explain(&scorer, point, 3)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = ablation_cache, ablation_parallel, ablation_hics_test, ablation_beam_fx
}
criterion_main!(benches);
