//! Table 1 / Figure 8 — testbed construction cost: dataset generation
//! and the exhaustive-LOF ground-truth derivation for the full-space
//! family. The characteristics themselves are printed by
//! `anomex-eval table1` / `fig8`.

use anomex_dataset::gen::fullspace::{generate_fullspace_with_outliers, FullSpacePreset};
use anomex_dataset::gen::hics::{generate_hics, HicsPreset};
use anomex_eval::ground_truth::derive_fullspace_ground_truth;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(4))
}

fn hics_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_hics_generation");
    for preset in HicsPreset::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(preset.name()),
            &preset,
            |b, &p| b.iter(|| generate_hics(p, 42)),
        );
    }
    group.finish();
}

fn fullspace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_fullspace_generation");
    for preset in FullSpacePreset::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(preset.name()),
            &preset,
            |b, &p| b.iter(|| generate_fullspace_with_outliers(p, 42)),
        );
    }
    group.finish();
}

/// The exhaustive 2d LOF scan that anchors the derived ground truth
/// (restricted to 2d and five outliers so a sample stays tractable;
/// the 3d/4d scans scale by C(d, k)).
fn ground_truth_derivation(c: &mut Criterion) {
    let (ds, outliers) = generate_fullspace_with_outliers(FullSpacePreset::BreastA, 42);
    let five = &outliers[..5];
    c.bench_function("table1_gt_derivation_2d", |b| {
        b.iter(|| derive_fullspace_ground_truth(&ds, five, &[2]))
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = hics_generation, fullspace_generation, ground_truth_derivation
}
criterion_main!(benches);
