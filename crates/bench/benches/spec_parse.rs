//! Microbenchmarks of the canonical spec layer: compact/JSON pipeline
//! parsing, canonical re-encoding, and fingerprinting.
//!
//! The spec parser sits on the serving request path (every
//! explain/summarize line goes through it) and in registry key
//! canonicalization, so its cost must stay far below one model fit.
//! `scripts/bench_snapshot.sh` distills the criterion estimates into
//! `BENCH_spec.json` at the repo root.

use anomex_spec::{DetectorSpec, PipelineSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(50)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

/// The spec texts that actually cross the wire: elided defaults, a
/// fully-spelled pipeline, and the canonical JSON object form.
const COMPACT_CASES: [(&str, &str); 3] = [
    ("elided", "beam+lof"),
    (
        "spelled",
        "refout:pool=150,width=100,results=100,seed=42+iforest:trees=100,psi=256,reps=10,seed=0",
    ),
    (
        "hics",
        "hics:mc=100,cutoff=400,results=100,fx=true,seed=42+abod:k=10",
    ),
];

fn pipeline_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec_parse");
    for (label, text) in COMPACT_CASES {
        group.bench_with_input(BenchmarkId::new("compact", label), &text, |b, t| {
            b.iter(|| PipelineSpec::parse(t).unwrap())
        });
    }
    let json = PipelineSpec::parse(COMPACT_CASES[1].1)
        .unwrap()
        .to_json()
        .emit();
    group.bench_with_input(BenchmarkId::new("json", "spelled"), &json, |b, t| {
        b.iter(|| PipelineSpec::parse(t).unwrap())
    });
    group.finish();
}

fn canonical_and_fingerprint(c: &mut Criterion) {
    let spec = PipelineSpec::parse(COMPACT_CASES[1].1).unwrap();
    let det = DetectorSpec::parse("iforest:seed=7").unwrap();
    let mut group = c.benchmark_group("spec_encode");
    group.bench_function("canonical", |b| b.iter(|| spec.canonical()));
    group.bench_function("fingerprint", |b| b.iter(|| spec.fingerprint()));
    group.bench_function("detector_canonical", |b| b.iter(|| det.canonical()));
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = pipeline_parse, canonical_and_fingerprint
}
criterion_main!(benches);
