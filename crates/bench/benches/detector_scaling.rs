//! Detector scoring cost vs dataset size and projection dimensionality —
//! the per-subspace costs behind the paper's Figure 11 discussion
//! ("to score a single subspace LOF needed 0.05, iForest 0.2 and Fast
//! ABOD 2 seconds approximately").

use anomex_bench::bench_dataset;
use anomex_dataset::gen::hics::HicsPreset;
use anomex_dataset::Subspace;
use anomex_detectors::{Detector, FastAbod, IsolationForest, Lof};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
}

fn detectors() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(Lof::new(15).unwrap()),
        Box::new(FastAbod::new(10).unwrap()),
        Box::new(
            IsolationForest::builder()
                .trees(100)
                .subsample(256)
                .repetitions(10)
                .seed(1)
                .build()
                .unwrap(),
        ),
    ]
}

/// One subspace scoring at the paper's scale (1000 points) for each
/// detector and projection dimensionality.
fn per_subspace_cost(c: &mut Criterion) {
    let ds = bench_dataset(HicsPreset::D39);
    let mut group = c.benchmark_group("per_subspace_cost");
    for dim in [2usize, 5] {
        let sub = Subspace::new((0..dim).collect::<Vec<_>>());
        let proj = ds.project(&sub);
        for det in detectors() {
            group.bench_with_input(
                BenchmarkId::new(det.name(), format!("{dim}d")),
                &proj,
                |b, proj| b.iter(|| det.score_all(proj)),
            );
        }
    }
    group.finish();
}

/// Scoring cost vs number of rows (the O(N²) kNN scans vs iForest's
/// subsampled trees).
fn row_scaling(c: &mut Criterion) {
    let ds = bench_dataset(HicsPreset::D14);
    let sub = Subspace::new([0usize, 1, 2]);
    let full = ds.project(&sub);
    let mut group = c.benchmark_group("row_scaling");
    for n in [250usize, 500, 1000] {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| full.row(i).to_vec()).collect();
        let small = anomex_dataset::Dataset::from_rows(rows)
            .unwrap()
            .full_matrix();
        for det in detectors() {
            group.bench_with_input(BenchmarkId::new(det.name(), n), &small, |b, m| {
                b.iter(|| det.score_all(m))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = per_subspace_cost, row_scaling
}
criterion_main!(benches);
