//! Detector distance-kernel benchmarks: the score-cache *miss* path.
//!
//! Three kNN builders over the same data answer the ISSUE's question
//! "how fast is a miss?":
//!
//! * `naive`   — sequential row-by-row `sq_dist` scan (the reference);
//! * `blocked` — norm-trick blocked kernel + parallel row blocks
//!   (the production path behind `knn_table`);
//! * `incremental` — kNN from a warm [`IncrementalDistances`] memo,
//!   i.e. the cost of extending a stage-wise chain `S → S ∪ {f}`:
//!   one O(N²) plane add instead of a fresh O(N²·d) scan;
//! * `blocked_f32` — the blocked build over `f32` storage with f64
//!   accumulation (the `precision=f32` opt-in).
//!
//! The `distance_kernels` group isolates the raw block sweep — scalar
//! f64 vs unrolled f64 vs f32 storage — with no k-selection in the
//! timed region.
//!
//! Grid: N ∈ {500, 1000, 2000} × d ∈ {2, 5, 10}, k = 15 (the paper's
//! LOF neighbourhood). `scripts/bench_snapshot.sh` distills the same
//! comparison into `BENCH_detectors.json`.

use anomex_dataset::{Dataset, IncrementalDistances, Subspace};
use anomex_detectors::kernels::{
    knn_table_blocked, knn_table_blocked_f32, knn_table_from_sq_dists, knn_table_naive,
    GatheredMatrix,
};
use anomex_detectors::simd::GatheredMatrixF32;
use anomex_detectors::{Detector, FastAbod, Lof};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const K: usize = 15;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
}

fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_rows(
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect::<Vec<Vec<f64>>>(),
    )
    .expect("well-formed")
}

/// naive vs blocked vs incremental kNN builds across the N × d grid.
fn knn_builders(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_builders");
    for n in [500usize, 1000, 2000] {
        for d in [2usize, 5, 10] {
            let ds = random_dataset(n, d, (n * 31 + d) as u64);
            let m = ds.full_matrix();
            let label = format!("N{n}-d{d}");

            group.bench_with_input(BenchmarkId::new("naive", &label), &m, |b, m| {
                b.iter(|| knn_table_naive(m, K))
            });
            group.bench_with_input(BenchmarkId::new("blocked", &label), &m, |b, m| {
                b.iter(|| knn_table_blocked(m, K))
            });
            group.bench_with_input(BenchmarkId::new("blocked_f32", &label), &m, |b, m| {
                b.iter(|| knn_table_blocked_f32(m, K))
            });

            // Incremental steady state: the memo holds the (d−1)-feature
            // parent matrix and the last feature's plane (warmed in the
            // per-batch setup, outside the timer); the measured routine
            // serves the full d-feature subspace — one O(N²) matrix copy
            // + plane add — and runs k-selection. This is the per-child
            // cost Beam/RefOut pay once the memo is enabled.
            let full = Subspace::full(d);
            let parent = Subspace::new(0..d - 1);
            group.bench_with_input(BenchmarkId::new("incremental", &label), &ds, |b, ds| {
                b.iter_batched(
                    || {
                        let inc = IncrementalDistances::new(2);
                        let _ = inc.sq_dists(ds, &parent);
                        let _ = inc.sq_dists(ds, &Subspace::single(d - 1));
                        inc
                    },
                    |inc| knn_table_from_sq_dists(&inc.sq_dists(ds, &full), K),
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

/// Kernel-only block passes, no k-selection: the scalar f64 reference
/// vs the unrolled f64 kernel (byte-identical output, so the ratio is
/// pure instruction-level win) vs the f32 storage kernel (half the
/// memory traffic). Selection costs dilute these ratios in the full
/// `knn_builders` timings; this group isolates the distance sweep that
/// the SIMD work actually targets.
fn distance_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_kernels");
    for (n, d) in [(1000usize, 5usize), (2000, 10)] {
        let ds = random_dataset(n, d, (n * 17 + d) as u64);
        let m = ds.full_matrix();
        let label = format!("N{n}-d{d}");
        let g64 = GatheredMatrix::new(&m);
        let g32 = GatheredMatrixF32::new(&m);

        let mut scalar_out = vec![0.0f64; 8 * n];
        group.bench_function(BenchmarkId::new("scalar", &label), |b| {
            b.iter(|| {
                let mut i0 = 0;
                while i0 < n {
                    let i1 = (i0 + 8).min(n);
                    g64.sq_dists_block_scalar_into(i0, i1, &mut scalar_out);
                    i0 = i1;
                }
                scalar_out[0]
            })
        });
        let mut simd_out = vec![0.0f64; 8 * n];
        group.bench_function(BenchmarkId::new("simd", &label), |b| {
            b.iter(|| {
                let mut i0 = 0;
                while i0 < n {
                    let i1 = (i0 + 8).min(n);
                    g64.sq_dists_block_into(i0, i1, &mut simd_out);
                    i0 = i1;
                }
                simd_out[0]
            })
        });
        let mut f32_out = vec![0.0f64; 8 * n];
        group.bench_function(BenchmarkId::new("f32", &label), |b| {
            b.iter(|| {
                let mut i0 = 0;
                while i0 < n {
                    let i1 = (i0 + 8).min(n);
                    g32.sq_dists_block_into(i0, i1, &mut f32_out);
                    i0 = i1;
                }
                f32_out[0]
            })
        });
    }
    group.finish();
}

/// End-to-end miss cost per detector: coordinates (projection path) vs
/// a warm distance matrix (the incremental path's steady state).
fn detector_miss_paths(c: &mut Criterion) {
    let ds = random_dataset(1000, 5, 99);
    let m = ds.full_matrix();
    let full = Subspace::full(5);
    let inc = IncrementalDistances::new(4);
    let dists = inc.sq_dists(&ds, &full);

    let lof = Lof::new(K).unwrap();
    let abod = FastAbod::new(10).unwrap();

    let mut group = c.benchmark_group("detector_miss");
    group.bench_function("LOF/coords/N1000-d5", |b| b.iter(|| lof.score_all(&m)));
    group.bench_function("LOF/dists/N1000-d5", |b| {
        b.iter(|| lof.score_from_sq_dists(&dists).expect("supported"))
    });
    group.bench_function("FastABOD/coords/N1000-d5", |b| {
        b.iter(|| abod.score_all(&m))
    });
    group.bench_function("FastABOD/dists/N1000-d5", |b| {
        b.iter(|| abod.score_from_sq_dists(&dists).expect("supported"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = knn_builders, distance_kernels, detector_miss_paths
}
criterion_main!(benches);
