//! Detector distance-kernel benchmarks: the score-cache *miss* path.
//!
//! Three kNN builders over the same data answer the ISSUE's question
//! "how fast is a miss?":
//!
//! * `naive`   — sequential row-by-row `sq_dist` scan (the reference);
//! * `blocked` — norm-trick blocked kernel + parallel row blocks
//!   (the production path behind `knn_table`);
//! * `incremental` — kNN from a warm [`IncrementalDistances`] memo,
//!   i.e. the cost of extending a stage-wise chain `S → S ∪ {f}`:
//!   one O(N²) plane add instead of a fresh O(N²·d) scan.
//!
//! Grid: N ∈ {500, 1000, 2000} × d ∈ {2, 5, 10}, k = 15 (the paper's
//! LOF neighbourhood). `scripts/bench_snapshot.sh` distills the same
//! comparison into `BENCH_detectors.json`.

use anomex_dataset::{Dataset, IncrementalDistances, Subspace};
use anomex_detectors::kernels::{knn_table_blocked, knn_table_from_sq_dists, knn_table_naive};
use anomex_detectors::{Detector, FastAbod, Lof};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const K: usize = 15;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
}

fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_rows(
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect::<Vec<Vec<f64>>>(),
    )
    .expect("well-formed")
}

/// naive vs blocked vs incremental kNN builds across the N × d grid.
fn knn_builders(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_builders");
    for n in [500usize, 1000, 2000] {
        for d in [2usize, 5, 10] {
            let ds = random_dataset(n, d, (n * 31 + d) as u64);
            let m = ds.full_matrix();
            let label = format!("N{n}-d{d}");

            group.bench_with_input(BenchmarkId::new("naive", &label), &m, |b, m| {
                b.iter(|| knn_table_naive(m, K))
            });
            group.bench_with_input(BenchmarkId::new("blocked", &label), &m, |b, m| {
                b.iter(|| knn_table_blocked(m, K))
            });

            // Incremental steady state: the memo holds the (d−1)-feature
            // parent matrix and the last feature's plane (warmed in the
            // per-batch setup, outside the timer); the measured routine
            // serves the full d-feature subspace — one O(N²) matrix copy
            // + plane add — and runs k-selection. This is the per-child
            // cost Beam/RefOut pay once the memo is enabled.
            let full = Subspace::full(d);
            let parent = Subspace::new(0..d - 1);
            group.bench_with_input(BenchmarkId::new("incremental", &label), &ds, |b, ds| {
                b.iter_batched(
                    || {
                        let inc = IncrementalDistances::new(2);
                        let _ = inc.sq_dists(ds, &parent);
                        let _ = inc.sq_dists(ds, &Subspace::single(d - 1));
                        inc
                    },
                    |inc| knn_table_from_sq_dists(&inc.sq_dists(ds, &full), K),
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

/// End-to-end miss cost per detector: coordinates (projection path) vs
/// a warm distance matrix (the incremental path's steady state).
fn detector_miss_paths(c: &mut Criterion) {
    let ds = random_dataset(1000, 5, 99);
    let m = ds.full_matrix();
    let full = Subspace::full(5);
    let inc = IncrementalDistances::new(4);
    let dists = inc.sq_dists(&ds, &full);

    let lof = Lof::new(K).unwrap();
    let abod = FastAbod::new(10).unwrap();

    let mut group = c.benchmark_group("detector_miss");
    group.bench_function("LOF/coords/N1000-d5", |b| b.iter(|| lof.score_all(&m)));
    group.bench_function("LOF/dists/N1000-d5", |b| {
        b.iter(|| lof.score_from_sq_dists(&dists).expect("supported"))
    });
    group.bench_function("FastABOD/coords/N1000-d5", |b| {
        b.iter(|| abod.score_all(&m))
    });
    group.bench_function("FastABOD/dists/N1000-d5", |b| {
        b.iter(|| abod.score_from_sq_dists(&dists).expect("supported"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = knn_builders, detector_miss_paths
}
criterion_main!(benches);
