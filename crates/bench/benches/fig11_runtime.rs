//! Figure 11 — runtime of detection & explanation pipelines.
//!
//! The paper's panels plot runtime vs explanation dimensionality for
//! every pipeline on HiCS 14–39d and Electricity. This bench regenerates
//! the same series at bench scale (reduced widths/pools so a Criterion
//! sample stays tractable); the full-scale numbers come from
//! `anomex-eval fig11`, which reports the measured wall-clock of the
//! real runs.

use anomex_bench::{bench_dataset, bench_pois};
use anomex_core::explainer::{PointExplainer, SummaryExplainer};
use anomex_core::scoring::SubspaceScorer;
use anomex_core::{Beam, Hics, LookOut, RefOut};
use anomex_dataset::gen::hics::HicsPreset;
use anomex_detectors::Lof;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
}

/// Panel (a)-(d) analogue: point explainers on D14/D23, runtime vs
/// explanation dimensionality, with LOF (the paper's fastest detector).
fn point_pipelines(c: &mut Criterion) {
    let lof = Lof::new(15).unwrap();
    let beam = Beam::new().beam_width(10);
    let refout = RefOut::new().pool_size(30).seed(1);
    let mut group = c.benchmark_group("fig11_point");
    for preset in [HicsPreset::D14, HicsPreset::D23] {
        let ds = bench_dataset(preset);
        for dim in [2usize, 3] {
            let point = bench_pois(preset, dim, 1)[0];
            group.bench_with_input(
                BenchmarkId::new(format!("Beam+LOF/{}", preset.name()), format!("{dim}d")),
                &dim,
                |b, &dim| {
                    b.iter(|| {
                        let scorer = SubspaceScorer::new(&ds, &lof);
                        beam.explain(&scorer, point, dim)
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("RefOut+LOF/{}", preset.name()), format!("{dim}d")),
                &dim,
                |b, &dim| {
                    b.iter(|| {
                        let scorer = SubspaceScorer::new(&ds, &lof);
                        refout.explain(&scorer, point, dim)
                    })
                },
            );
        }
    }
    group.finish();
}

/// Panel (e)-(h) analogue: summarizers on D14, runtime vs explanation
/// dimensionality.
fn summary_pipelines(c: &mut Criterion) {
    let lof = Lof::new(15).unwrap();
    let lookout = LookOut::new().budget(20);
    let hics = Hics::new().monte_carlo_iterations(25).candidate_cutoff(50);
    let ds = bench_dataset(HicsPreset::D14);
    let mut group = c.benchmark_group("fig11_summary");
    for dim in [2usize, 3] {
        let pois = bench_pois(HicsPreset::D14, dim, 5);
        group.bench_with_input(
            BenchmarkId::new("LookOut+LOF/D14", format!("{dim}d")),
            &dim,
            |b, &dim| {
                b.iter(|| {
                    let scorer = SubspaceScorer::without_cache(&ds, &lof);
                    lookout.summarize(&scorer, &pois, dim)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("HiCS+LOF/D14", format!("{dim}d")),
            &dim,
            |b, &dim| {
                b.iter(|| {
                    let scorer = SubspaceScorer::new(&ds, &lof);
                    hics.summarize(&scorer, &pois, dim)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = point_pipelines, summary_pipelines
}
criterion_main!(benches);
