//! Microbenchmarks of the statistical substrate: the two-sample tests
//! and the kNN kernel every pipeline leans on.

use anomex_bench::bench_dataset;
use anomex_dataset::gen::hics::HicsPreset;
use anomex_dataset::Subspace;
use anomex_detectors::knn::knn_table;
use anomex_detectors::zscore::standardize_scores;
use anomex_stats::tests::ks::ks_two_sample;
use anomex_stats::tests::welch::welch_t_test;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
}

fn two_sample_tests(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("two_sample_tests");
    for n in [100usize, 1000] {
        let a: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let b2: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() + 0.3).collect();
        group.bench_with_input(BenchmarkId::new("welch", n), &n, |bch, _| {
            bch.iter(|| welch_t_test(&a, &b2).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ks", n), &n, |bch, _| {
            bch.iter(|| ks_two_sample(&a, &b2).unwrap())
        });
    }
    group.finish();
}

fn knn_kernel(c: &mut Criterion) {
    let ds = bench_dataset(HicsPreset::D14);
    let mut group = c.benchmark_group("knn_kernel");
    for dim in [2usize, 5] {
        let proj = ds.project(&Subspace::new((0..dim).collect::<Vec<_>>()));
        group.bench_with_input(BenchmarkId::new("k15", format!("{dim}d")), &proj, |b, p| {
            b.iter(|| knn_table(p, 15))
        });
    }
    group.finish();
}

fn score_standardization(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let scores: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>() * 3.0).collect();
    c.bench_function("zscore_1000", |b| b.iter(|| standardize_scores(&scores)));
}

criterion_group! {
    name = benches;
    config = config();
    targets = two_sample_tests, knn_kernel, score_standardization
}
criterion_main!(benches);
