//! The explanation service: named datasets, spec-addressed detectors and
//! explainers, and the request executor behind the JSON-lines front end.
//!
//! [`ExplanationService`] owns the long-lived state — registered
//! datasets, the [`ModelRegistry`] of fitted models, and one shared
//! [`ScoreCache`] per (dataset, detector) pair — and executes one
//! [`RequestBody`] at a time. Explanations run through a real
//! [`ExplanationEngine`] over those shared caches, so a served response
//! is **bit-identical** to calling the engine directly with the same
//! dataset, detector and spec (the `crosscheck` integration tests assert
//! this per detector).
//!
//! [`ServeHandle`] couples a service to a [`Batcher`]: requests submitted
//! through the handle are micro-batched, executed on the worker pool, and
//! annotated with queue/execution timing.

use crate::batch::{BatchConfig, BatchContext, BatchCounters, Batcher, ServeError, Ticket};
use crate::protocol::{
    DatasetInfo, DatasetRows, ErrorCode, ModelDescriptor, RankedEntry, ReplicationManifest,
    ReplicationReport, Request, RequestBody, Response, ServeTiming, ServiceStats,
};
use crate::registry::{ModelKey, ModelRegistry, ShardedModelRegistry};
use crate::shed::{LoadShedder, SloConfig};
use anomex_core::{
    ExplainerKind, ExplanationEngine, RankedSubspaces, RunSpec, RunStats, ScoreCache,
};
use anomex_dataset::gen::hics::{generate_hics, HicsPreset};
use anomex_dataset::{Dataset, Subspace};
use anomex_detectors::{build_detector, Detector};
use anomex_spec::{DatasetRef, DetectorSpec, ExplainerSpec, PipelineSpec, RecommendTask};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// A typed execution failure: a wire [`ErrorCode`] plus prose. Every
/// path through [`ExplanationService::execute`] classifies its failures
/// so clients can branch on the category instead of parsing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// Machine-readable failure category.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
}

impl ServiceError {
    /// A `map_err`-ready constructor currying the category.
    fn of(code: ErrorCode) -> impl Fn(String) -> ServiceError {
        move |message| ServiceError { code, message }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ServiceError {}

/// What one executed operation produced; [`ExplanationService::respond`]
/// folds it into a [`Response`].
#[derive(Debug, Default)]
struct Outcome {
    score: Option<f64>,
    explanation: Option<Vec<RankedEntry>>,
    dataset: Option<DatasetInfo>,
    service: Option<ServiceStats>,
    profile: Option<serde_json::Value>,
    recommendation: Option<serde_json::Value>,
    manifest: Option<ReplicationManifest>,
    replication: Option<ReplicationReport>,
    run: Option<RunStats>,
}

/// A registered dataset plus its append generation. The epoch bumps on
/// every `append`, and model-registry / score-cache keys embed it
/// (`name` at epoch 0, `name@e{N}` after), so entries fitted against a
/// pre-append snapshot are never consulted again — no stale model can
/// serve post-append requests, even when a lazy fit races the append.
struct DatasetEntry {
    data: Arc<Dataset>,
    epoch: u64,
}

impl DatasetEntry {
    /// The epoch-qualified internal id used for registry and cache keys.
    fn keyed_id(&self, name: &str) -> String {
        if self.epoch == 0 {
            name.to_string()
        } else {
            format!("{name}@e{}", self.epoch)
        }
    }
}

fn obs_append_migrated() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("serve.append.migrated_models"))
}

fn obs_append_deferred() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("serve.append.deferred_refits"))
}

/// The serving state machine — see the [module docs](self).
pub struct ExplanationService {
    datasets: RwLock<BTreeMap<String, DatasetEntry>>,
    registry: ShardedModelRegistry,
    /// One score cache per (dataset, canonical detector) pair, shared by
    /// every explanation request against that pair.
    caches: Mutex<BTreeMap<(String, String), Arc<ScoreCache>>>,
    /// Scheduler counters, attached by [`ServeHandle::start`] so the
    /// `stats` operation can report them from inside a handler.
    batch_counters: OnceLock<Arc<BatchCounters>>,
}

impl Default for ExplanationService {
    fn default() -> Self {
        Self::new()
    }
}

impl ExplanationService {
    /// A service with an unbounded fitted-model registry, sharded at the
    /// default width.
    #[must_use]
    pub fn new() -> Self {
        Self::with_sharded_registry(ShardedModelRegistry::default())
    }

    /// A service over a caller-configured flat registry (e.g.
    /// FIFO-bounded via [`ModelRegistry::with_capacity`] for
    /// memory-constrained serving); wrapped as a single shard, so flat
    /// capacity semantics are preserved exactly.
    #[must_use]
    pub fn with_registry(registry: ModelRegistry) -> Self {
        Self::with_sharded_registry(ShardedModelRegistry::from_single(registry))
    }

    /// A service over a caller-configured sharded registry.
    #[must_use]
    pub fn with_sharded_registry(registry: ShardedModelRegistry) -> Self {
        ExplanationService {
            datasets: RwLock::new(BTreeMap::new()),
            registry,
            caches: Mutex::new(BTreeMap::new()),
            batch_counters: OnceLock::new(),
        }
    }

    /// The fitted-model registry.
    #[must_use]
    pub fn registry(&self) -> &ShardedModelRegistry {
        &self.registry
    }

    /// Registers `dataset` under `name`.
    ///
    /// # Errors
    /// When the name is empty or already taken — fitted models are keyed
    /// by dataset name, so replacing data under a live name would serve
    /// stale models.
    pub fn register_dataset(&self, name: &str, dataset: Dataset) -> Result<DatasetInfo, String> {
        if name.is_empty() {
            return Err("dataset name must not be empty".to_string());
        }
        let mut w = self
            .datasets
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        if w.contains_key(name) {
            return Err(format!("dataset '{name}' is already registered"));
        }
        let info = DatasetInfo {
            name: name.to_string(),
            n_rows: dataset.n_rows(),
            n_features: dataset.n_features(),
        };
        w.insert(
            name.to_string(),
            DatasetEntry {
                data: Arc::new(dataset),
                epoch: 0,
            },
        );
        Ok(info)
    }

    /// Resolves a dataset by name: registered datasets first, then the
    /// synthetic `hicsN[@seed]` presets (e.g. `"hics14"`, `"hics23@7"`),
    /// which are generated on first use and cached.
    ///
    /// # Errors
    /// When the name is neither registered nor a recognizable preset.
    pub fn resolve_dataset(&self, name: &str) -> Result<Arc<Dataset>, String> {
        self.resolve_keyed(name).map(|(ds, _)| ds)
    }

    /// Resolves a dataset together with its epoch-qualified internal id
    /// — the string the model registry and score caches key on. Equal to
    /// the public name until the first `append` bumps the epoch.
    fn resolve_keyed(&self, name: &str) -> Result<(Arc<Dataset>, String), String> {
        {
            let r = self.datasets.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(entry) = r.get(name) {
                return Ok((Arc::clone(&entry.data), entry.keyed_id(name)));
            }
        }
        let (preset, seed) = parse_hics_name(name)
            .ok_or_else(|| format!("unknown dataset '{name}' (register it with a load request)"))?;
        let generated = Arc::new(generate_hics(preset, seed).dataset);
        let mut w = self
            .datasets
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let entry = w.entry(name.to_string()).or_insert(DatasetEntry {
            data: generated,
            epoch: 0,
        });
        Ok((Arc::clone(&entry.data), entry.keyed_id(name)))
    }

    /// Service-wide counters. The obs snapshot is taken while holding no
    /// service lock (the registry's interior mutex is a leaf — see
    /// `crates/analyze/lock_order.txt`).
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            registry: self.registry.stats(),
            registry_shards: self.registry.n_shards(),
            registry_shard_entries: self.registry.shard_entries(),
            batch: self
                .batch_counters
                .get()
                .map(|c| c.snapshot())
                .unwrap_or_default(),
            datasets: self
                .datasets
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
            obs: anomex_obs::snapshot().counters,
        }
    }

    /// Wires the scheduler's counters into the `stats` operation; called
    /// by [`ServeHandle::start`]. Later calls are no-ops.
    pub fn attach_scheduler(&self, counters: Arc<BatchCounters>) {
        // anomex: allow(swallowed-error) OnceLock::set rejection is the documented later-call no-op
        let _ = self.batch_counters.set(counters);
    }

    /// Executes one request and folds the outcome (or failure) into a
    /// [`Response`] with queue/execution timing. Handler panics become
    /// error responses, so one degenerate request cannot take down the
    /// worker pool.
    #[must_use]
    pub fn respond(&self, req: &Request, ctx: &BatchContext) -> Response {
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| self.execute(&req.body)));
        let mut timing = ServeTiming {
            queue_micros: duration_micros(ctx.queued),
            exec_micros: duration_micros(started.elapsed()),
            batch_size: ctx.batch_size,
            run: None,
        };
        match result {
            Ok(Ok(outcome)) => {
                timing.run = outcome.run;
                let mut resp = Response::success(req.id);
                resp.score = outcome.score;
                resp.explanation = outcome.explanation;
                resp.dataset = outcome.dataset;
                resp.service = outcome.service;
                resp.profile = outcome.profile;
                resp.recommendation = outcome.recommendation;
                resp.manifest = outcome.manifest;
                resp.replication = outcome.replication;
                resp.timing = Some(timing);
                resp
            }
            Ok(Err(e)) => {
                let mut resp = Response::failure_coded(req.id, e.code, e.message);
                resp.timing = Some(timing);
                resp
            }
            Err(payload) => {
                let msg = crate::batch::panic_message(payload.as_ref());
                let mut resp = Response::failure_coded(
                    req.id,
                    ErrorCode::Internal,
                    format!("request panicked: {msg}"),
                );
                resp.timing = Some(timing);
                resp
            }
        }
    }

    /// The shared score cache of one (dataset, canonical detector) pair.
    fn cache_for(&self, dataset: &str, detector: &str) -> Arc<ScoreCache> {
        let mut caches = self.caches.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            caches
                .entry((dataset.to_string(), detector.to_string()))
                .or_insert_with(|| Arc::new(ScoreCache::new())),
        )
    }

    fn execute(&self, body: &RequestBody) -> Result<Outcome, ServiceError> {
        let bad_request = ServiceError::of(ErrorCode::BadRequest);
        let unknown_dataset = ServiceError::of(ErrorCode::UnknownDataset);
        let unknown_spec = ServiceError::of(ErrorCode::UnknownSpec);
        match body {
            RequestBody::Load { dataset, rows } => {
                let ds =
                    Dataset::from_rows(rows.clone()).map_err(|e| bad_request(e.to_string()))?;
                let info = self.register_dataset(dataset, ds).map_err(bad_request)?;
                Ok(Outcome {
                    dataset: Some(info),
                    ..Outcome::default()
                })
            }
            RequestBody::Append {
                dataset,
                rows,
                window,
            } => self.append_dataset(dataset, rows, *window),
            RequestBody::Score {
                dataset,
                detector,
                subspace,
                point,
            } => {
                let (ds, keyed) = self.resolve_keyed(dataset).map_err(unknown_dataset)?;
                let (canonical, det) = parse_detector(detector).map_err(unknown_spec)?;
                check_point(&ds, *point).map_err(&bad_request)?;
                if ds.n_rows() < 2 {
                    return Err(bad_request("scoring needs at least 2 rows".to_string()));
                }
                let sub = match subspace {
                    Some(features) => check_subspace(&ds, features).map_err(bad_request)?,
                    None => Subspace::full(ds.n_features()),
                };
                let key = ModelKey::new(keyed, canonical, sub);
                let entry = self
                    .registry
                    .try_get_or_fit(&key, &ds, det.as_ref())
                    .map_err(|e| ServiceError::of(ErrorCode::FitFailed)(e.to_string()))?;
                let score = entry.try_score_of(*point).ok_or_else(|| {
                    ServiceError::of(ErrorCode::Internal)(format!(
                        "validated point {point} missing from the frozen score vector"
                    ))
                })?;
                Ok(Outcome {
                    score: Some(score),
                    ..Outcome::default()
                })
            }
            RequestBody::Explain {
                dataset,
                detector,
                explainer,
                pipeline,
                point,
                dim,
            } => {
                let (ds, keyed) = self.resolve_keyed(dataset).map_err(unknown_dataset)?;
                let (canonical, det, kind) =
                    resolve_pipeline(detector, explainer, pipeline.as_ref())
                        .map_err(unknown_spec)?;
                check_point(&ds, *point).map_err(&bad_request)?;
                check_dim(&ds, *dim).map_err(bad_request)?;
                self.run_engine(
                    &keyed,
                    &canonical,
                    &ds,
                    det.as_ref(),
                    &kind,
                    &[*point],
                    *dim,
                )
            }
            RequestBody::Summarize {
                dataset,
                detector,
                explainer,
                pipeline,
                points,
                dim,
            } => {
                let (ds, keyed) = self.resolve_keyed(dataset).map_err(unknown_dataset)?;
                let (canonical, det, kind) =
                    resolve_pipeline(detector, explainer, pipeline.as_ref())
                        .map_err(unknown_spec)?;
                if points.is_empty() {
                    return Err(bad_request(
                        "summarize needs at least one point".to_string(),
                    ));
                }
                for &p in points {
                    check_point(&ds, p).map_err(&bad_request)?;
                }
                check_dim(&ds, *dim).map_err(bad_request)?;
                self.run_engine(&keyed, &canonical, &ds, det.as_ref(), &kind, points, *dim)
            }
            RequestBody::Profile { dataset } => {
                let ds = self.resolve_dataset(dataset).map_err(unknown_dataset)?;
                let profile = anomex_core::profile_dataset(&ds);
                Ok(Outcome {
                    profile: Some(
                        spec_json_to_value(&profile.to_json())
                            .map_err(ServiceError::of(ErrorCode::Internal))?,
                    ),
                    ..Outcome::default()
                })
            }
            RequestBody::Recommend { dataset, task } => {
                let task = RecommendTask::parse(task).map_err(bad_request)?;
                let ds = self.resolve_dataset(dataset).map_err(unknown_dataset)?;
                let profile = anomex_core::profile_dataset(&ds);
                let rec = anomex_spec::recommend(&profile, task);
                Ok(Outcome {
                    recommendation: Some(
                        spec_json_to_value(&rec.to_json())
                            .map_err(ServiceError::of(ErrorCode::Internal))?,
                    ),
                    ..Outcome::default()
                })
            }
            RequestBody::Replicate { from } => match from {
                None => Ok(Outcome {
                    manifest: Some(self.export_manifest()),
                    ..Outcome::default()
                }),
                Some(peer) => self.import_replica(peer),
            },
            RequestBody::Stats => Ok(Outcome {
                service: Some(self.stats()),
                ..Outcome::default()
            }),
        }
    }

    /// Executes the `append` operation: extends the named dataset with
    /// new rows (optionally bounded to a sliding window of the most
    /// recent `window` rows), bumps its append epoch, and migrates
    /// fitted models forward. Models whose detector supports
    /// incremental extension are updated in place via
    /// [`anomex_detectors::FittedModel::append_rows`] and republished
    /// under the new
    /// epoch's keys; the rest — and every model when the window dropped
    /// rows, since vanished neighbors invalidate an incremental merge —
    /// refit lazily on next use. The obs counters
    /// `serve.append.{migrated_models,deferred_refits}` separate the two
    /// paths, and the detector layer's `detectors.append.{merges,rebuilds}`
    /// split the migration work itself.
    fn append_dataset(
        &self,
        name: &str,
        rows: &[Vec<f64>],
        window: Option<usize>,
    ) -> Result<Outcome, ServiceError> {
        let bad_request = ServiceError::of(ErrorCode::BadRequest);
        if rows.is_empty() {
            return Err(bad_request("append needs at least one row".to_string()));
        }
        if window == Some(0) {
            return Err(bad_request("append window must be at least 1".to_string()));
        }
        // Materialize presets first so `append` works against `hicsN`
        // names exactly like registered datasets.
        self.resolve_dataset(name)
            .map_err(ServiceError::of(ErrorCode::UnknownDataset))?;
        let added = Dataset::from_rows(rows.to_vec()).map_err(|e| bad_request(e.to_string()))?;

        // Swap the dataset under the write lock; migration below works
        // on owned snapshots, holding no service lock.
        let (old_id, new_id, dropped_rows, info) = {
            let mut map = self
                .datasets
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            let entry = map.get_mut(name).ok_or_else(|| {
                ServiceError::of(ErrorCode::UnknownDataset)(format!(
                    "dataset '{name}' disappeared during append"
                ))
            })?;
            if added.n_features() != entry.data.n_features() {
                return Err(bad_request(format!(
                    "appended rows have {} features, dataset '{name}' has {}",
                    added.n_features(),
                    entry.data.n_features()
                )));
            }
            let mut combined: Vec<Vec<f64>> = (0..entry.data.n_rows())
                .map(|i| entry.data.row(i))
                .collect();
            combined.extend(rows.iter().cloned());
            let mut dropped = 0usize;
            if let Some(limit) = window {
                if combined.len() > limit {
                    dropped = combined.len() - limit;
                    combined.drain(..dropped);
                }
            }
            let new_data =
                Arc::new(Dataset::from_rows(combined).map_err(|e| bad_request(e.to_string()))?);
            let old_id = entry.keyed_id(name);
            entry.epoch += 1;
            let info = DatasetInfo {
                name: name.to_string(),
                n_rows: new_data.n_rows(),
                n_features: new_data.n_features(),
            };
            entry.data = new_data;
            (old_id, entry.keyed_id(name), dropped, info)
        };

        // The superseded epoch's score caches are unreachable (new
        // requests key on `new_id`); release them eagerly.
        {
            let mut caches = self.caches.lock().unwrap_or_else(PoisonError::into_inner);
            caches.retain(|(ds, _), _| ds != &old_id);
        }

        // Migrate fitted models forward under the new epoch's keys.
        for (key, entry) in self.registry.ready_entries_for_dataset(&old_id) {
            let migrated = if dropped_rows == 0 {
                let t0 = Instant::now();
                let projected = added.project(&key.subspace);
                entry
                    .model()
                    .append_rows(&projected)
                    .map(|model| (model, t0.elapsed()))
            } else {
                None
            };
            match migrated {
                Some((model, took)) => {
                    let new_key = ModelKey::new(new_id.clone(), key.detector, key.subspace);
                    self.registry.insert_ready(&new_key, model, took);
                    obs_append_migrated().incr();
                }
                None => obs_append_deferred().incr(),
            }
        }
        self.registry.remove_dataset(&old_id);
        Ok(Outcome {
            dataset: Some(info),
            ..Outcome::default()
        })
    }

    /// Builds this process's replication manifest: every registered
    /// dataset's current rows, plus the public key of every ready fitted
    /// model. Models are listed by key, not shipped — fits are
    /// deterministic, so an importer refitting the same keys arrives at
    /// bit-identical frozen scores.
    ///
    /// Model keys are rendered with the **public** dataset name (append
    /// epoch stripped): the importer starts at epoch 0, and what
    /// replication promises is "the same model set over the same current
    /// data", not a replay of the source's append history.
    fn export_manifest(&self) -> ReplicationManifest {
        // Snapshot (name, keyed id, data) under the read lock, then walk
        // the registry lock-free of service state: the registry's shard
        // mutexes must stay leaves.
        let snapshot: Vec<(String, String, Arc<Dataset>)> = {
            let r = self.datasets.read().unwrap_or_else(PoisonError::into_inner);
            r.iter()
                .map(|(name, entry)| (name.clone(), entry.keyed_id(name), Arc::clone(&entry.data)))
                .collect()
        };
        let mut manifest = ReplicationManifest::default();
        for (name, keyed, data) in snapshot {
            manifest.datasets.push(DatasetRows {
                name: name.clone(),
                rows: (0..data.n_rows()).map(|i| data.row(i)).collect(),
            });
            for (key, _) in self.registry.ready_entries_for_dataset(&keyed) {
                manifest.models.push(ModelDescriptor {
                    dataset: name.clone(),
                    detector: key.detector,
                    subspace: key.subspace.iter().collect(),
                });
            }
        }
        manifest
    }

    /// Imports a peer's model set: fetches its replication manifest over
    /// one JSON-lines round trip, registers the datasets this process
    /// does not already have, and warm-fits every model key so the
    /// replica answers its first real request from a hot registry.
    ///
    /// Runs on a batch worker and blocks on the peer (bounded by a 30s
    /// socket timeout) — replication is an administrative operation, not
    /// a hot-path one.
    fn import_replica(&self, peer: &str) -> Result<Outcome, ServiceError> {
        let bad_request = ServiceError::of(ErrorCode::BadRequest);
        let manifest = fetch_manifest(peer).map_err(bad_request)?;
        let mut report = ReplicationReport::default();
        for ds in manifest.datasets {
            match Dataset::from_rows(ds.rows)
                .map_err(|e| e.to_string())
                .and_then(|data| self.register_dataset(&ds.name, data))
            {
                Ok(_) => report.datasets_loaded += 1,
                // Already registered (or malformed): keep the local copy.
                Err(_) => report.datasets_skipped += 1,
            }
        }
        for model in manifest.models {
            let fitted = self.resolve_keyed(&model.dataset).and_then(|(ds, keyed)| {
                let (canonical, det) = parse_detector(&model.detector)?;
                let sub = check_subspace(&ds, &model.subspace)?;
                let key = ModelKey::new(keyed, canonical, sub);
                self.registry
                    .try_get_or_fit(&key, &ds, det.as_ref())
                    .map_err(|e| e.to_string())
            });
            match fitted {
                Ok(_) => report.models_fitted += 1,
                Err(_) => report.models_skipped += 1,
            }
        }
        Ok(Outcome {
            replication: Some(report),
            ..Outcome::default()
        })
    }

    /// Runs a real [`ExplanationEngine`] over the pair's shared cache —
    /// the same code path a direct caller would use, which is what makes
    /// served explanations bit-identical to library calls.
    #[allow(clippy::too_many_arguments)]
    fn run_engine(
        &self,
        dataset_name: &str,
        canonical_detector: &str,
        ds: &Arc<Dataset>,
        det: &dyn Detector,
        kind: &ExplainerKind,
        points: &[usize],
        dim: usize,
    ) -> Result<Outcome, ServiceError> {
        let first = points.first().copied().ok_or_else(|| {
            ServiceError::of(ErrorCode::BadRequest)("no points to explain".to_string())
        })?;
        let cache = self.cache_for(dataset_name, canonical_detector);
        let engine = ExplanationEngine::with_cache(ds, det, cache);
        let run = engine
            .run(kind, &RunSpec::new(points.to_vec(), vec![dim]))
            .into_single();
        let ranked = run.explanations.get(&first).cloned().unwrap_or_default();
        Ok(Outcome {
            explanation: Some(ranked_entries(&ranked)),
            run: Some(run.stats),
            ..Outcome::default()
        })
    }
}

/// The outcome of handing one input line to a [`ServeHandle`].
pub enum Submitted {
    /// The request was queued; redeem the ticket for the response.
    Queued(u64, Ticket<Response>),
    /// The line failed before queueing (parse error, backpressure); the
    /// response is already final.
    Immediate(Response),
}

impl Submitted {
    /// Blocks until the response is available, converting scheduler
    /// errors (timeout, shutdown) into error responses.
    #[must_use]
    pub fn resolve(self) -> Response {
        match self {
            Submitted::Immediate(resp) => resp,
            Submitted::Queued(id, ticket) => ticket.wait().unwrap_or_else(|e| e.to_response(id)),
        }
    }
}

/// A running service: an [`ExplanationService`] coupled to a micro-batch
/// scheduler. Dropping the handle shuts the worker pool down.
pub struct ServeHandle {
    service: Arc<ExplanationService>,
    batcher: Batcher<Request, Response>,
    default_deadline: Option<Duration>,
    /// SLO admission control; `None` = admit everything the queue takes.
    shedder: Option<LoadShedder>,
}

impl ServeHandle {
    /// Starts the worker pool over `service` with no SLO admission
    /// control. `default_deadline` bounds every request's time in the
    /// system (queue wait + execution); `None` lets requests wait
    /// indefinitely.
    #[must_use]
    pub fn start(
        service: Arc<ExplanationService>,
        cfg: BatchConfig,
        default_deadline: Option<Duration>,
    ) -> Self {
        Self::start_with_slo(service, cfg, default_deadline, None)
    }

    /// Starts the worker pool with optional SLO-driven load shedding:
    /// when `slo` is set, a [`LoadShedder`] watches the queue-wait
    /// histogram and [`ServeHandle::submit`] rejects with
    /// [`ServeError::Shed`] while the configured quantile exceeds the
    /// budget — the queue stays short instead of merely bounded.
    #[must_use]
    pub fn start_with_slo(
        service: Arc<ExplanationService>,
        cfg: BatchConfig,
        default_deadline: Option<Duration>,
        slo: Option<SloConfig>,
    ) -> Self {
        let svc = Arc::clone(&service);
        let batcher = Batcher::new(cfg, move |req: &Request, ctx: &BatchContext| {
            svc.respond(req, ctx)
        });
        service.attach_scheduler(batcher.counters());
        ServeHandle {
            service,
            batcher,
            default_deadline,
            shedder: slo.map(LoadShedder::new),
        }
    }

    /// The underlying service.
    #[must_use]
    pub fn service(&self) -> &Arc<ExplanationService> {
        &self.service
    }

    /// The deadline applied to every submitted request.
    #[must_use]
    pub fn default_deadline(&self) -> Option<Duration> {
        self.default_deadline
    }

    /// Queues one request.
    ///
    /// # Errors
    /// [`ServeError::Shed`] while the queue-wait SLO is being violated,
    /// [`ServeError::Rejected`] under queue-capacity backpressure,
    /// [`ServeError::ShutDown`] after shutdown.
    pub fn submit(&self, req: Request) -> Result<Ticket<Response>, ServeError> {
        if let Some(shedder) = &self.shedder {
            if shedder.should_shed() {
                return Err(ServeError::Shed {
                    retry_after_ms: shedder.retry_after_ms(),
                });
            }
        }
        self.batcher.submit(req, self.default_deadline)
    }

    /// Parses one JSON line and queues it. Returns `None` for blank
    /// lines; parse failures and backpressure produce an
    /// [`Submitted::Immediate`] error response (extracting the request
    /// id when the line was at least valid JSON).
    #[must_use]
    pub fn submit_line(&self, line: &str) -> Option<Submitted> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        match serde_json::from_str::<Request>(line) {
            Ok(req) => {
                let id = req.id;
                Some(match self.submit(req) {
                    Ok(ticket) => Submitted::Queued(id, ticket),
                    Err(e) => Submitted::Immediate(e.to_response(id)),
                })
            }
            Err(parse_err) => {
                let id = serde_json::from_str::<serde_json::Value>(line)
                    .ok()
                    .and_then(|v| v.get("id").and_then(serde_json::Value::as_u64))
                    .unwrap_or(0);
                Some(Submitted::Immediate(Response::failure_coded(
                    id,
                    ErrorCode::BadRequest,
                    format!("bad request: {parse_err}"),
                )))
            }
        }
    }

    /// Submits one request and blocks for its response — the convenience
    /// path for in-process callers and tests.
    #[must_use]
    pub fn roundtrip(&self, req: Request) -> Response {
        let id = req.id;
        match self.submit(req) {
            Ok(ticket) => Submitted::Queued(id, ticket).resolve(),
            Err(e) => e.to_response(id),
        }
    }
}

/// One JSON-lines round trip against a peer serve process: sends a
/// manifest-export `replicate` request and returns the manifest. Socket
/// reads and writes are bounded by a 30s timeout so a hung peer cannot
/// pin a batch worker forever.
fn fetch_manifest(peer: &str) -> Result<ReplicationManifest, String> {
    use std::io::{BufRead, BufReader, Write};
    let timeout = Duration::from_secs(30);
    let stream = std::net::TcpStream::connect(peer)
        .map_err(|e| format!("replicate: cannot connect to '{peer}': {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("replicate: {e}"))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| format!("replicate: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("replicate: {e}"))?;
    writer
        .write_all(b"{\"id\":0,\"op\":\"replicate\"}\n")
        .map_err(|e| format!("replicate: request to '{peer}' failed: {e}"))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("replicate: reading from '{peer}' failed: {e}"))?;
    let resp: Response = serde_json::from_str(line.trim())
        .map_err(|e| format!("replicate: peer '{peer}' sent malformed JSON: {e}"))?;
    if !resp.ok {
        return Err(format!(
            "replicate: peer '{peer}' refused: {}",
            resp.error.unwrap_or_else(|| "unknown error".to_string())
        ));
    }
    resp.manifest
        .ok_or_else(|| format!("replicate: peer '{peer}' sent no manifest"))
}

/// Converts a ranking into its wire representation.
fn ranked_entries(ranked: &RankedSubspaces) -> Vec<RankedEntry> {
    ranked
        .entries()
        .iter()
        .map(|(s, score)| RankedEntry {
            subspace: s.iter().collect(),
            score: *score,
        })
        .collect()
}

fn duration_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn check_point(ds: &Dataset, point: usize) -> Result<(), String> {
    if point >= ds.n_rows() {
        return Err(format!(
            "point {point} out of range (dataset has {} rows)",
            ds.n_rows()
        ));
    }
    Ok(())
}

fn check_dim(ds: &Dataset, dim: usize) -> Result<(), String> {
    if dim == 0 || dim > ds.n_features() {
        return Err(format!(
            "dim {dim} out of range (dataset has {} features)",
            ds.n_features()
        ));
    }
    Ok(())
}

fn check_subspace(ds: &Dataset, features: &[usize]) -> Result<Subspace, String> {
    if features.is_empty() {
        return Err("subspace must not be empty".to_string());
    }
    if let Some(&bad) = features.iter().find(|&&f| f >= ds.n_features()) {
        return Err(format!(
            "feature {bad} out of range (dataset has {} features)",
            ds.n_features()
        ));
    }
    Ok(Subspace::new(features.iter().copied()))
}

/// Parses `hicsN[@seed]` preset names (seed defaults to 42), via the
/// canonical [`DatasetRef`] parser.
fn parse_hics_name(name: &str) -> Option<(HicsPreset, u64)> {
    match DatasetRef::parse(name) {
        DatasetRef::Synthetic { dims, seed } => {
            let preset = match dims {
                14 => HicsPreset::D14,
                23 => HicsPreset::D23,
                39 => HicsPreset::D39,
                70 => HicsPreset::D70,
                100 => HicsPreset::D100,
                _ => return None,
            };
            Some((preset, seed))
        }
        DatasetRef::Named(_) => None,
    }
}

/// Parses a detector spec (`"lof"`, `"lof:k=5"`,
/// `"iforest:trees=50,psi=128,reps=2,seed=7"`, `"abod:k=10"`,
/// `"knndist:k=5"`, or a `DetectorSpec` JSON object) into its
/// **canonical** description — every hyper-parameter spelled out, so
/// equivalent specs share registry and cache entries — plus the
/// configured detector. Parsing and construction both go through
/// `anomex-spec`, so the wire grammar is the one the whole workspace
/// shares.
///
/// # Errors
/// On unknown detector names, unknown parameters, or invalid values.
pub fn parse_detector(spec: &str) -> Result<(String, Box<dyn Detector>), String> {
    let parsed = DetectorSpec::parse(spec)?;
    let det = build_detector(&parsed).map_err(|e| e.to_string())?;
    Ok((parsed.canonical(), det))
}

/// Parses an explainer spec (`"beam"`, `"refout[:seed=s]"`,
/// `"lookout[:budget=b]"`, `"hics[:seed=s]"`, or an `ExplainerSpec`
/// JSON object) through the shared `anomex-spec` grammar.
///
/// # Errors
/// On unknown explainer names, unknown parameters, or invalid values.
pub fn parse_explainer(spec: &str) -> Result<ExplainerKind, String> {
    ExplainerKind::from_spec(&ExplainerSpec::parse(spec)?)
}

/// Resolves the (canonical detector, detector, explainer) triple of an
/// explain/summarize request: either the legacy separate `detector` /
/// `explainer` strings, or an inline `pipeline` spec (compact string or
/// JSON object) — but not both.
fn resolve_pipeline(
    detector: &str,
    explainer: &str,
    pipeline: Option<&serde_json::Value>,
) -> Result<(String, Box<dyn Detector>, ExplainerKind), String> {
    match pipeline {
        Some(value) => {
            if !detector.is_empty() || !explainer.is_empty() {
                return Err(
                    "request carries both 'pipeline' and 'detector'/'explainer' specs".to_string(),
                );
            }
            let text = match value {
                serde_json::Value::String(compact) => compact.clone(),
                object => object.to_string(),
            };
            let spec = PipelineSpec::parse(&text)?;
            let det = build_detector(&spec.detector).map_err(|e| e.to_string())?;
            let kind = ExplainerKind::from_spec(&spec.explainer)?;
            Ok((spec.detector.canonical(), det, kind))
        }
        None => {
            if detector.is_empty() || explainer.is_empty() {
                return Err(
                    "request needs 'detector' and 'explainer' specs (or an inline 'pipeline')"
                        .to_string(),
                );
            }
            let (canonical, det) = parse_detector(detector)?;
            let kind = parse_explainer(explainer)?;
            Ok((canonical, det, kind))
        }
    }
}

/// Re-encodes an `anomex-spec` JSON value as a `serde_json` value for
/// the wire (the spec crate is std-only and carries its own JSON type).
fn spec_json_to_value(json: &anomex_spec::Json) -> Result<serde_json::Value, String> {
    serde_json::from_str(&json.emit()).map_err(|e| format!("profile serialization failed: {e}"))
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    fn toy_rows() -> Vec<Vec<f64>> {
        let mut rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64 * 0.01, (i / 5) as f64 * 0.01])
            .collect();
        rows.push(vec![3.0, 3.0]);
        rows
    }

    fn service_with_toy() -> Arc<ExplanationService> {
        let svc = Arc::new(ExplanationService::new());
        let ds = Dataset::from_rows(toy_rows()).unwrap();
        svc.register_dataset("toy", ds).unwrap();
        svc
    }

    #[test]
    fn detector_specs_canonicalize() {
        assert_eq!(parse_detector("lof").unwrap().0, "lof:k=15");
        assert_eq!(parse_detector("LOF:k=5").unwrap().0, "lof:k=5");
        assert_eq!(parse_detector("fastabod").unwrap().0, "abod:k=10");
        assert_eq!(
            parse_detector("iforest:trees=50,seed=7").unwrap().0,
            "iforest:trees=50,psi=256,reps=10,seed=7"
        );
        assert!(parse_detector("lof:q=1").is_err());
        assert!(parse_detector("lof:k=0").is_err());
        assert!(parse_detector("svm").is_err());
    }

    #[test]
    fn explainer_specs_parse() {
        assert!(matches!(
            parse_explainer("beam").unwrap(),
            ExplainerKind::Point(_)
        ));
        assert!(matches!(
            parse_explainer("lookout:budget=3").unwrap(),
            ExplainerKind::Summary(_)
        ));
        assert!(parse_explainer("lookout:budget=0").is_err());
        assert!(parse_explainer("shap").is_err());
    }

    #[test]
    fn inline_pipeline_specs_resolve() {
        let (canon, _, kind) =
            resolve_pipeline("", "", Some(&serde_json::json!("beam+lof:k=3"))).unwrap();
        assert_eq!(canon, "lof:k=3");
        assert!(matches!(kind, ExplainerKind::Point(_)));

        let obj = serde_json::json!({
            "detector": {"kind": "lof", "k": 3},
            "explainer": {"kind": "lookout", "budget": 2},
        });
        let (canon, _, kind) = resolve_pipeline("", "", Some(&obj)).unwrap();
        assert_eq!(canon, "lof:k=3");
        assert!(matches!(kind, ExplainerKind::Summary(_)));

        // Both forms at once are ambiguous; neither form is an error.
        assert!(resolve_pipeline("lof", "", Some(&serde_json::json!("beam+lof"))).is_err());
        assert!(resolve_pipeline("lof", "", None).is_err());
        assert!(resolve_pipeline("", "", None).is_err());
    }

    #[test]
    fn profile_and_recommend_ops_serve_json() {
        let svc = service_with_toy();
        let out = svc
            .execute(&RequestBody::Profile {
                dataset: "toy".into(),
            })
            .unwrap();
        let profile = out.profile.expect("profile payload");
        assert_eq!(profile["n_rows"], 21);
        assert_eq!(profile["n_features"], 2);

        let out = svc
            .execute(&RequestBody::Recommend {
                dataset: "toy".into(),
                task: "point".into(),
            })
            .unwrap();
        let rec = out.recommendation.expect("recommendation payload");
        // 2 features: a point task on a low-dimensional dataset is Beam+LOF.
        assert_eq!(
            rec["compact"],
            "beam:width=100,results=100,fx=true+lof:k=15"
        );
        let trace = rec["trace"].as_array().expect("reasoning trace");
        assert!(trace.iter().any(|t| t["fired"] == true), "{trace:?}");

        let err = svc
            .execute(&RequestBody::Recommend {
                dataset: "toy".into(),
                task: "banana".into(),
            })
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);

        let err = svc
            .execute(&RequestBody::Profile {
                dataset: "missing".into(),
            })
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownDataset);
    }

    #[test]
    fn hics_preset_names_resolve() {
        let svc = ExplanationService::new();
        let ds = svc.resolve_dataset("hics14").unwrap();
        assert_eq!(ds.n_features(), 14);
        // Cached: the second resolve returns the same Arc.
        let again = svc.resolve_dataset("hics14").unwrap();
        assert!(Arc::ptr_eq(&ds, &again));
        assert!(svc.resolve_dataset("hics15").is_err());
        assert!(svc.resolve_dataset("nope").is_err());
    }

    #[test]
    fn load_rejects_duplicate_names() {
        let svc = service_with_toy();
        let out = svc.execute(&RequestBody::Load {
            dataset: "toy".into(),
            rows: toy_rows(),
        });
        assert!(out.is_err());
    }

    #[test]
    fn score_validates_inputs() {
        let svc = service_with_toy();
        let base = |point: usize, subspace: Option<Vec<usize>>| RequestBody::Score {
            dataset: "toy".into(),
            detector: "lof:k=3".into(),
            subspace,
            point,
        };
        assert!(svc.execute(&base(999, None)).is_err());
        assert!(svc.execute(&base(0, Some(vec![9]))).is_err());
        assert!(svc.execute(&base(0, Some(vec![]))).is_err());
        let ok = svc.execute(&base(20, None)).unwrap();
        assert!(ok.score.is_some());
    }

    #[test]
    fn failures_carry_typed_codes() {
        let svc = service_with_toy();
        let code = |body: RequestBody| svc.execute(&body).unwrap_err().code;
        let score = |dataset: &str, detector: &str, point: usize| RequestBody::Score {
            dataset: dataset.into(),
            detector: detector.into(),
            subspace: None,
            point,
        };
        assert_eq!(code(score("missing", "lof", 0)), ErrorCode::UnknownDataset);
        assert_eq!(code(score("toy", "svm", 0)), ErrorCode::UnknownSpec);
        assert_eq!(code(score("toy", "lof", 999)), ErrorCode::BadRequest);
        assert_eq!(
            code(RequestBody::Explain {
                dataset: "toy".into(),
                detector: "lof".into(),
                explainer: "shap".into(),
                pipeline: None,
                point: 0,
                dim: 1,
            }),
            ErrorCode::UnknownSpec
        );
        assert_eq!(
            code(RequestBody::Summarize {
                dataset: "toy".into(),
                detector: "lof".into(),
                explainer: "lookout".into(),
                pipeline: None,
                points: vec![],
                dim: 1,
            }),
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn score_fit_failures_are_typed_not_panics() {
        let svc = service_with_toy();
        let two = Dataset::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        svc.register_dataset("two", two).unwrap();
        let res = svc.execute(&RequestBody::Score {
            dataset: "two".into(),
            detector: "lof:k=5".into(),
            subspace: None,
            point: 0,
        });
        match res {
            // Either the fit degrades gracefully (a score comes back) or
            // it fails as a typed FitFailed — never a panic.
            Ok(outcome) => assert!(outcome.score.is_some()),
            Err(e) => assert_eq!(e.code, ErrorCode::FitFailed),
        }
    }

    #[test]
    fn append_then_score_matches_a_refit_from_scratch() {
        let all = toy_rows();
        let (head, tail) = all.split_at(16);
        // Incremental service: load the head, fit via a score, append
        // the tail — the fitted LOF migrates instead of refitting.
        let svc = Arc::new(ExplanationService::new());
        svc.register_dataset("toy", Dataset::from_rows(head.to_vec()).unwrap())
            .unwrap();
        let score_req = |point: usize| RequestBody::Score {
            dataset: "toy".into(),
            detector: "lof:k=3".into(),
            subspace: None,
            point,
        };
        svc.execute(&score_req(0)).unwrap();
        assert_eq!(svc.registry().stats().fits, 1);
        let out = svc
            .execute(&RequestBody::Append {
                dataset: "toy".into(),
                rows: tail.to_vec(),
                window: None,
            })
            .unwrap();
        let info = out.dataset.expect("append reports the new shape");
        assert_eq!(info.n_rows, all.len());
        assert_eq!(info.name, "toy", "the public name is epoch-free");

        // Reference service: the full dataset loaded at once.
        let fresh = service_with_toy();
        for point in 0..all.len() {
            let a = svc.execute(&score_req(point)).unwrap().score.unwrap();
            let b = fresh.execute(&score_req(point)).unwrap().score.unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "point {point}");
        }
        // Every post-append score came from the migrated model: the only
        // fit this registry ever ran was the pre-append one.
        assert_eq!(svc.registry().stats().fits, 1);
    }

    #[test]
    fn windowed_append_defers_to_a_lazy_refit() {
        let svc = service_with_toy(); // 21 rows
        let score = RequestBody::Score {
            dataset: "toy".into(),
            detector: "lof:k=3".into(),
            subspace: None,
            point: 0,
        };
        svc.execute(&score).unwrap();
        assert_eq!(svc.registry().stats().fits, 1);
        // Keep only the most recent 10 of 25 rows: old rows vanish, so
        // the fitted model cannot merge and the registry is left cold.
        let out = svc
            .execute(&RequestBody::Append {
                dataset: "toy".into(),
                rows: vec![vec![0.02, 0.03]; 4],
                window: Some(10),
            })
            .unwrap();
        assert_eq!(out.dataset.unwrap().n_rows, 10);
        assert_eq!(
            svc.registry().len(),
            0,
            "no model migrates across a window drop"
        );
        // Scoring after the window refits on the surviving rows and
        // matches a from-scratch service over exactly those rows.
        let a = svc.execute(&score).unwrap().score.unwrap();
        assert_eq!(svc.registry().stats().fits, 2);
        let mut rows = toy_rows();
        rows.extend(std::iter::repeat(vec![0.02, 0.03]).take(4));
        let survivors = rows.split_off(rows.len() - 10);
        let fresh = Arc::new(ExplanationService::new());
        fresh
            .register_dataset("toy", Dataset::from_rows(survivors).unwrap())
            .unwrap();
        let b = fresh.execute(&score).unwrap().score.unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn explanations_after_append_match_a_fresh_service() {
        let all = toy_rows();
        let (head, tail) = all.split_at(16);
        let svc = Arc::new(ExplanationService::new());
        svc.register_dataset("toy", Dataset::from_rows(head.to_vec()).unwrap())
            .unwrap();
        svc.execute(&RequestBody::Append {
            dataset: "toy".into(),
            rows: tail.to_vec(),
            window: None,
        })
        .unwrap();
        let explain = RequestBody::Explain {
            dataset: "toy".into(),
            detector: "lof:k=3".into(),
            explainer: "beam".into(),
            pipeline: None,
            point: 20,
            dim: 2,
        };
        let a = svc.execute(&explain).unwrap().explanation.unwrap();
        let b = service_with_toy()
            .execute(&explain)
            .unwrap()
            .explanation
            .unwrap();
        assert_eq!(a, b, "served explanations see the appended data");
    }

    #[test]
    fn append_validates_inputs() {
        let svc = service_with_toy();
        let append =
            |dataset: &str, rows: Vec<Vec<f64>>, window: Option<usize>| RequestBody::Append {
                dataset: dataset.into(),
                rows,
                window,
            };
        let code = |body: RequestBody| svc.execute(&body).unwrap_err().code;
        assert_eq!(
            code(append("missing", vec![vec![0.0, 0.0]], None)),
            ErrorCode::UnknownDataset
        );
        assert_eq!(code(append("toy", vec![], None)), ErrorCode::BadRequest);
        assert_eq!(
            code(append("toy", vec![vec![1.0]], None)),
            ErrorCode::BadRequest,
            "width mismatch"
        );
        assert_eq!(
            code(append("toy", vec![vec![1.0, 2.0]], Some(0))),
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn score_is_served_from_the_registry() {
        let svc = service_with_toy();
        let req = RequestBody::Score {
            dataset: "toy".into(),
            detector: "lof:k=3".into(),
            subspace: Some(vec![0, 1]),
            point: 20,
        };
        let a = svc.execute(&req).unwrap().score.unwrap();
        let b = svc.execute(&req).unwrap().score.unwrap();
        assert_eq!(a, b);
        let stats = svc.registry().stats();
        assert_eq!(stats.fits, 1, "second request must be a registry hit");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn handle_roundtrips_and_times_requests() {
        let svc = service_with_toy();
        let handle = ServeHandle::start(svc, BatchConfig::default(), None);
        let resp = handle.roundtrip(Request {
            id: 11,
            body: RequestBody::Explain {
                dataset: "toy".into(),
                detector: "lof:k=3".into(),
                explainer: "beam".into(),
                pipeline: None,
                point: 20,
                dim: 2,
            },
        });
        assert!(resp.ok, "{:?}", resp.error);
        assert_eq!(resp.id, 11);
        let explanation = resp.explanation.expect("explain returns a ranking");
        assert!(!explanation.is_empty());
        let timing = resp.timing.expect("timing is always attached");
        assert!(timing.batch_size >= 1);
        assert!(timing.run.is_some(), "explain reports engine stats");
    }

    #[test]
    fn parse_failures_become_error_responses() {
        let svc = service_with_toy();
        let handle = ServeHandle::start(svc, BatchConfig::default(), None);
        let resp = handle
            .submit_line(r#"{"id": 5, "op": "frobnicate"}"#)
            .expect("non-blank line")
            .resolve();
        assert!(!resp.ok);
        assert_eq!(resp.id, 5, "id recovered from malformed request");
        assert!(handle.submit_line("   ").is_none());
    }

    #[test]
    fn panics_become_error_responses() {
        // A 1-row dataset passes the point/dim validators but makes the
        // kNN table build panic inside the detector — the catch_unwind
        // in respond() must turn that into an error response.
        let svc = service_with_toy();
        let handle = ServeHandle::start(Arc::clone(&svc), BatchConfig::default(), None);
        let one_row = Dataset::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        svc.register_dataset("one", one_row).unwrap();
        let resp = handle.roundtrip(Request {
            id: 3,
            body: RequestBody::Explain {
                dataset: "one".into(),
                detector: "lof:k=3".into(),
                explainer: "beam".into(),
                pipeline: None,
                point: 0,
                dim: 1,
            },
        });
        assert!(!resp.ok, "kNN on a 1-row dataset must fail, not hang");
        assert_eq!(resp.id, 3);
        assert_eq!(resp.code, Some(ErrorCode::Internal));
    }

    #[test]
    fn replicate_export_lists_datasets_and_ready_models() {
        let svc = service_with_toy();
        svc.execute(&RequestBody::Score {
            dataset: "toy".into(),
            detector: "lof:k=3".into(),
            subspace: None,
            point: 0,
        })
        .unwrap();
        let out = svc.execute(&RequestBody::Replicate { from: None }).unwrap();
        let manifest = out.manifest.expect("export returns a manifest");
        assert_eq!(manifest.datasets.len(), 1);
        assert_eq!(manifest.datasets[0].name, "toy");
        assert_eq!(manifest.datasets[0].rows, toy_rows());
        assert_eq!(manifest.models.len(), 1);
        assert_eq!(manifest.models[0].dataset, "toy");
        assert_eq!(manifest.models[0].detector, "lof:k=3");
        assert_eq!(manifest.models[0].subspace, vec![0, 1]);
    }

    #[test]
    fn replicate_export_uses_public_names_after_append() {
        let svc = service_with_toy();
        let score = RequestBody::Score {
            dataset: "toy".into(),
            detector: "lof:k=3".into(),
            subspace: None,
            point: 0,
        };
        svc.execute(&score).unwrap();
        svc.execute(&RequestBody::Append {
            dataset: "toy".into(),
            rows: vec![vec![0.02, 0.03]],
            window: None,
        })
        .unwrap();
        svc.execute(&score).unwrap();
        let manifest = svc
            .execute(&RequestBody::Replicate { from: None })
            .unwrap()
            .manifest
            .unwrap();
        assert_eq!(
            manifest.models.len(),
            1,
            "only the live epoch's model is listed"
        );
        assert_eq!(
            manifest.models[0].dataset, "toy",
            "epoch qualifiers must not leak onto the wire"
        );
        assert_eq!(manifest.datasets[0].rows.len(), toy_rows().len() + 1);
    }

    #[test]
    fn replicate_import_over_tcp_warms_a_bit_identical_replica() {
        use crate::front::ReactorServer;
        use anomex_reactor::ReactorConfig;

        // Source process: data + one fitted model, behind a reactor.
        let source = service_with_toy();
        let score = |id: u64| Request {
            id,
            body: RequestBody::Score {
                dataset: "toy".into(),
                detector: "lof:k=3".into(),
                subspace: None,
                point: 20,
            },
        };
        let source_handle = Arc::new(ServeHandle::start(
            Arc::clone(&source),
            BatchConfig::default(),
            None,
        ));
        let expected = source_handle.roundtrip(score(1)).score.unwrap();
        let server = ReactorServer::start(
            Arc::clone(&source_handle),
            "127.0.0.1:0",
            ReactorConfig::default(),
        )
        .unwrap();

        // Replica process: one replicate call pulls data and warm-fits.
        let replica = Arc::new(ExplanationService::new());
        let out = replica
            .execute(&RequestBody::Replicate {
                from: Some(server.addr().to_string()),
            })
            .unwrap();
        let report = out.replication.expect("import returns a report");
        assert_eq!(report.datasets_loaded, 1);
        assert_eq!(report.models_fitted, 1);
        assert_eq!(report.models_skipped, 0);
        assert_eq!(replica.registry().stats().fits, 1, "warm-fitted");

        // The replica serves the same bits without contacting the source.
        server.stop().unwrap();
        let got = replica.execute(&score(2).body).unwrap().score.unwrap();
        assert_eq!(got.to_bits(), expected.to_bits());
        assert_eq!(
            replica.registry().stats().fits,
            1,
            "the serving read was a registry hit, not a refit"
        );
    }

    #[test]
    fn replicate_import_from_an_unreachable_peer_is_typed() {
        let svc = ExplanationService::new();
        let err = svc
            .execute(&RequestBody::Replicate {
                // A reserved port on localhost nothing listens on.
                from: Some("127.0.0.1:1".into()),
            })
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("cannot connect"), "{}", err.message);
    }

    #[test]
    fn slo_shedding_rejects_typed_then_recovers() {
        let svc = service_with_toy();
        let handle = ServeHandle::start_with_slo(
            svc,
            BatchConfig::default(),
            None,
            Some(SloConfig {
                queue_wait_limit_micros: 1_000,
                quantile: 0.99,
                min_observations: 8,
                eval_interval: Duration::from_millis(0),
            }),
        );
        // Simulate a violated SLO: the live queue-wait histogram records
        // a burst of 60ms waits after the shedder's baseline snapshot.
        let h = anomex_obs::histogram(crate::shed::QUEUE_WAIT_METRIC);
        for _ in 0..100 {
            h.observe(60_000);
        }
        let req = || Request {
            id: 9,
            body: RequestBody::Stats,
        };
        let err = handle.submit(req()).unwrap_err();
        assert!(matches!(err, ServeError::Shed { .. }), "{err:?}");
        assert_eq!(err.code(), ErrorCode::Overloaded, "typed wire rejection");
        assert_eq!(
            err.retry_after_ms(),
            Some(1),
            "a zero eval interval still hints at least 1ms"
        );
        // With a zero eval interval every submit re-evaluates, so keep
        // the violation visible for the wire-shaped check...
        for _ in 0..100 {
            h.observe(60_000);
        }
        // ...and submit_line degrades identically, as the wire would see.
        let resp = handle
            .submit_line(r#"{"id": 9, "op": "stats"}"#)
            .unwrap()
            .resolve();
        assert!(!resp.ok);
        assert_eq!(resp.code, Some(ErrorCode::Overloaded));
        assert_eq!(
            resp.retry_after_ms,
            Some(1),
            "the shed response carries the retry hint on the wire"
        );
        // The next window is quiet, so admission control releases.
        let resp = handle.roundtrip(req());
        assert!(resp.ok, "shed must release once the window drains");
    }
}
