//! The micro-batching request scheduler: a bounded queue with
//! backpressure, a deadline-or-capacity batch cut, and a worker pool that
//! fans each batch out through [`anomex_parallel::par_map`].
//!
//! The scheduler exists because explanation requests arrive one at a
//! time but are served best in groups: concurrent requests against the
//! same (dataset, detector) pair share the fitted-model registry and the
//! score cache, so running them shoulder-to-shoulder turns N detector
//! fits into one fit plus N−1 lookups. [`Batcher`] makes that sharing
//! systematic without changing any result — execution through a batch is
//! bit-identical to executing each request alone, a property the
//! scheduler property tests pin down.
//!
//! ## Lifecycle of a request
//!
//! 1. [`Batcher::submit`] pushes the request onto a **bounded** queue.
//!    A full queue fails fast with [`ServeError::Rejected`]
//!    (backpressure — the caller decides whether to retry), never
//!    blocks the submitter.
//! 2. A worker cuts a batch when either `max_batch` requests are
//!    waiting **or** the oldest request has waited `max_delay`
//!    (deadline-or-capacity cut: latency is bounded even at low load).
//! 3. The batch executes via [`anomex_parallel::par_map`]; each request's
//!    handler runs under `catch_unwind`, so one panicking request fails
//!    itself ([`ServeError::Internal`]) without taking the batch down.
//! 4. The submitter redeems its [`Ticket`]; a per-request deadline turns
//!    into [`ServeError::TimedOut`] — both when the worker notices the
//!    expiry before executing and when the waiter gives up first — so an
//!    overloaded service degrades into fast failures, not hangs.

use anomex_parallel::par_map;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Process-wide scheduler meters mirroring [`BatchCounters`]: every
/// `serve.batch.*` counter increments at exactly the call site of its
/// `BatchStats` twin, so an obs snapshot delta reconciles with the
/// scheduler's own stats (a property the serve tests pin). Histograms
/// add what `BatchStats` cannot carry: batch-size and queue-wait
/// distributions.
fn obs_submitted() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("serve.batch.submitted"))
}

fn obs_rejected() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("serve.batch.rejected"))
}

fn obs_deadline_misses() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("serve.batch.deadline_misses"))
}

fn obs_completed() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("serve.batch.completed"))
}

fn obs_failed() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("serve.batch.failed"))
}

fn obs_batches() -> &'static anomex_obs::Counter {
    static C: OnceLock<&'static anomex_obs::Counter> = OnceLock::new();
    C.get_or_init(|| anomex_obs::counter("serve.batch.batches"))
}

fn obs_batch_size() -> &'static anomex_obs::Histogram {
    static H: OnceLock<&'static anomex_obs::Histogram> = OnceLock::new();
    H.get_or_init(|| anomex_obs::histogram("serve.batch.size"))
}

fn obs_queue_wait_micros() -> &'static anomex_obs::Histogram {
    static H: OnceLock<&'static anomex_obs::Histogram> = OnceLock::new();
    H.get_or_init(|| anomex_obs::histogram("serve.batch.queue_wait_micros"))
}

/// Locks a mutex, recovering the guard from a poisoned lock. The
/// scheduler's own critical sections never panic; poison could only come
/// from a crashed worker, and abandoning the queue then would turn one
/// failure into a deadlock for every waiter.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why a request failed to produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue was full at submission time (backpressure).
    Rejected,
    /// Admission control refused the request: the queue-wait SLO is
    /// being violated and the [`LoadShedder`](crate::shed::LoadShedder)
    /// is shedding new work before it can queue.
    Shed {
        /// Client retry hint: the shed decision cannot change sooner
        /// than the shedder's next window evaluation.
        retry_after_ms: u64,
    },
    /// The request's deadline expired before a result was produced.
    TimedOut,
    /// The scheduler is shutting down.
    ShutDown,
    /// The request's handler panicked; the payload is the panic message.
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected => write!(f, "queue full, request rejected"),
            ServeError::Shed { retry_after_ms } => write!(
                f,
                "queue-wait SLO exceeded, request shed; retry after {retry_after_ms}ms"
            ),
            ServeError::TimedOut => write!(f, "deadline expired"),
            ServeError::ShutDown => write!(f, "service shut down"),
            ServeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    /// The wire-protocol category of this scheduler failure.
    #[must_use]
    pub fn code(&self) -> crate::protocol::ErrorCode {
        use crate::protocol::ErrorCode;
        match self {
            ServeError::Rejected => ErrorCode::Overloaded,
            ServeError::Shed { .. } => ErrorCode::Overloaded,
            ServeError::TimedOut => ErrorCode::TimedOut,
            ServeError::ShutDown => ErrorCode::ShuttingDown,
            ServeError::Internal(_) => ErrorCode::Internal,
        }
    }

    /// Client retry hint in milliseconds, when this failure carries one
    /// (currently only SLO sheds do).
    #[must_use]
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServeError::Shed { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }

    /// The wire response for this failure: typed code, prose, and the
    /// retry hint when one applies.
    #[must_use]
    pub fn to_response(&self, id: u64) -> crate::protocol::Response {
        let mut resp = crate::protocol::Response::failure_coded(id, self.code(), self.to_string());
        resp.retry_after_ms = self.retry_after_ms();
        resp
    }
}

/// Scheduler tuning knobs. The defaults favour interactive workloads:
/// small batches cut after at most 2 ms of coalescing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum queued (not yet executing) requests; submissions beyond
    /// this fail with [`ServeError::Rejected`]. Clamped to ≥ 1.
    pub queue_capacity: usize,
    /// Maximum requests per batch. Clamped to ≥ 1.
    pub max_batch: usize,
    /// How long a worker may hold an underfull batch open waiting for
    /// more requests, measured from the oldest request's arrival.
    pub max_delay: Duration,
    /// Worker threads cutting and executing batches. Clamped to ≥ 1.
    pub workers: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            queue_capacity: 1024,
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            workers: 2,
        }
    }
}

/// Execution context the scheduler hands to the request handler.
#[derive(Debug, Clone, Copy)]
pub struct BatchContext {
    /// Time the request spent queued before its batch started executing.
    pub queued: Duration,
    /// Number of live requests in the batch executing alongside this one.
    pub batch_size: usize,
}

/// A snapshot of the scheduler's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Requests accepted onto the queue.
    pub submitted: usize,
    /// Submissions refused because the queue was full.
    pub rejected: usize,
    /// Requests whose deadline expired before execution.
    pub timed_out: usize,
    /// Requests whose handler returned normally.
    pub completed: usize,
    /// Requests whose handler panicked.
    pub failed: usize,
    /// Batches cut.
    pub batches: usize,
    /// Largest batch executed so far.
    pub max_batch_size: usize,
}

/// Shared atomic counters behind [`BatchStats`]; `Arc`-shared with the
/// service so a `stats` request can report them from inside a handler.
#[derive(Debug, Default)]
pub struct BatchCounters {
    submitted: AtomicUsize,
    rejected: AtomicUsize,
    timed_out: AtomicUsize,
    completed: AtomicUsize,
    failed: AtomicUsize,
    batches: AtomicUsize,
    max_batch_size: AtomicUsize,
}

impl BatchCounters {
    /// A consistent-enough snapshot of the counters (each counter is read
    /// atomically; the set is not a single atomic transaction).
    #[must_use]
    pub fn snapshot(&self) -> BatchStats {
        BatchStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch_size: self.max_batch_size.load(Ordering::Relaxed),
        }
    }
}

/// The slot a submitter waits on: filled exactly once by a worker (or by
/// shutdown), then consumed by [`Ticket::wait`].
struct TicketInner<R> {
    slot: Mutex<Option<Result<R, ServeError>>>,
    done: Condvar,
}

impl<R> TicketInner<R> {
    fn new() -> Self {
        TicketInner {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn fill(&self, res: Result<R, ServeError>) {
        *lock(&self.slot) = Some(res);
        self.done.notify_all();
    }
}

/// The submitter's claim on a queued request's eventual result.
pub struct Ticket<R> {
    inner: Arc<TicketInner<R>>,
    deadline: Option<Instant>,
}

impl<R> Ticket<R> {
    /// Blocks until the request completes, fails, or its deadline
    /// expires. A completed result beats a simultaneously-expired
    /// deadline (the slot is checked first), so deadlines never discard
    /// finished work.
    pub fn wait(self) -> Result<R, ServeError> {
        let mut slot = lock(&self.inner.slot);
        loop {
            if let Some(res) = slot.take() {
                return res;
            }
            match self.deadline {
                None => {
                    slot = self
                        .inner
                        .done
                        .wait(slot)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(ServeError::TimedOut);
                    }
                    slot = self
                        .inner
                        .done
                        .wait_timeout(slot, d - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
        }
    }

    /// Non-blocking poll: `Some` once the result is available. Consumes
    /// the result, so a later [`Ticket::wait`] would block forever —
    /// use one or the other.
    pub fn try_take(&self) -> Option<Result<R, ServeError>> {
        lock(&self.inner.slot).take()
    }
}

/// One queued request.
struct Job<Q, R> {
    req: Q,
    enqueued: Instant,
    deadline: Option<Instant>,
    ticket: Arc<TicketInner<R>>,
}

struct QueueState<Q, R> {
    queue: VecDeque<Job<Q, R>>,
    shutdown: bool,
}

type Handler<Q, R> = Box<dyn Fn(&Q, &BatchContext) -> R + Send + Sync>;

struct Shared<Q, R> {
    state: Mutex<QueueState<Q, R>>,
    arrived: Condvar,
    cfg: BatchConfig,
    counters: Arc<BatchCounters>,
    handler: Handler<Q, R>,
}

/// The micro-batching scheduler — see the [module docs](self).
pub struct Batcher<Q, R> {
    shared: Arc<Shared<Q, R>>,
    workers: Vec<JoinHandle<()>>,
}

impl<Q: Send + Sync + 'static, R: Send + 'static> Batcher<Q, R> {
    /// Starts the worker pool. `handler` executes one request within its
    /// batch; it must be deterministic in the request alone for batch
    /// composition to be unobservable in the results.
    pub fn new<F>(cfg: BatchConfig, handler: F) -> Self
    where
        F: Fn(&Q, &BatchContext) -> R + Send + Sync + 'static,
    {
        let cfg = BatchConfig {
            queue_capacity: cfg.queue_capacity.max(1),
            max_batch: cfg.max_batch.max(1),
            max_delay: cfg.max_delay,
            workers: cfg.workers.max(1),
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            arrived: Condvar::new(),
            cfg,
            counters: Arc::new(BatchCounters::default()),
            handler: Box::new(handler),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("anomex-serve-worker-{i}"))
                    .spawn(move || Self::worker_loop(&shared))
                    .expect("spawn batch worker") // anomex: allow(panic-path) startup-only, before any request is accepted
            })
            .collect();
        Batcher { shared, workers }
    }

    /// Enqueues a request. `deadline` is a per-request time budget
    /// measured from now; once it expires the request resolves to
    /// [`ServeError::TimedOut`] instead of executing.
    ///
    /// # Errors
    /// [`ServeError::Rejected`] when the queue is at capacity,
    /// [`ServeError::ShutDown`] after the scheduler started stopping.
    pub fn submit(&self, req: Q, deadline: Option<Duration>) -> Result<Ticket<R>, ServeError> {
        let now = Instant::now();
        let deadline = deadline.map(|d| now + d);
        let inner = Arc::new(TicketInner::new());
        {
            let mut st = lock(&self.shared.state);
            if st.shutdown {
                return Err(ServeError::ShutDown);
            }
            if st.queue.len() >= self.shared.cfg.queue_capacity {
                self.shared
                    .counters
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                obs_rejected().incr();
                return Err(ServeError::Rejected);
            }
            st.queue.push_back(Job {
                req,
                enqueued: now,
                deadline,
                ticket: Arc::clone(&inner),
            });
        }
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        obs_submitted().incr();
        self.shared.arrived.notify_one();
        Ok(Ticket { inner, deadline })
    }

    /// The scheduler's live counters (shareable with request handlers).
    #[must_use]
    pub fn counters(&self) -> Arc<BatchCounters> {
        Arc::clone(&self.shared.counters)
    }

    /// A snapshot of the scheduler's counters.
    #[must_use]
    pub fn stats(&self) -> BatchStats {
        self.shared.counters.snapshot()
    }

    /// Requests currently queued (not yet cut into a batch).
    #[must_use]
    pub fn queue_len(&self) -> usize {
        lock(&self.shared.state).queue.len()
    }

    fn worker_loop(shared: &Shared<Q, R>) {
        loop {
            let batch: Vec<Job<Q, R>> = {
                let mut st = lock(&shared.state);
                loop {
                    if !st.queue.is_empty() {
                        break;
                    }
                    if st.shutdown {
                        return;
                    }
                    st = shared
                        .arrived
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                // Deadline-or-capacity cut: hold the batch open until it
                // is full, the oldest request has waited `max_delay`, or
                // shutdown flushes everything immediately.
                // anomex: allow(panic-path) loop is entered only after the wait saw a nonempty queue
                let cut = st.queue.front().expect("queue nonempty").enqueued + shared.cfg.max_delay;
                while st.queue.len() < shared.cfg.max_batch && !st.shutdown {
                    let now = Instant::now();
                    if now >= cut {
                        break;
                    }
                    let (guard, timeout) = shared
                        .arrived
                        .wait_timeout(st, cut - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    st = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
                let take = st.queue.len().min(shared.cfg.max_batch);
                st.queue.drain(..take).collect()
            };
            if batch.is_empty() {
                continue;
            }
            Self::run_batch(shared, &batch);
        }
    }

    fn run_batch(shared: &Shared<Q, R>, batch: &[Job<Q, R>]) {
        let counters = &shared.counters;
        counters.batches.fetch_add(1, Ordering::Relaxed);
        obs_batches().incr();
        let started = Instant::now();
        // Expired requests fail fast without costing detector work.
        let mut live: Vec<&Job<Q, R>> = Vec::with_capacity(batch.len());
        for job in batch {
            if job.deadline.is_some_and(|d| started >= d) {
                counters.timed_out.fetch_add(1, Ordering::Relaxed);
                obs_deadline_misses().incr();
                job.ticket.fill(Err(ServeError::TimedOut));
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            return;
        }
        counters
            .max_batch_size
            .fetch_max(live.len(), Ordering::Relaxed);
        let batch_size = live.len();
        obs_batch_size().observe(batch_size as u64);
        for job in &live {
            let waited = started.saturating_duration_since(job.enqueued);
            obs_queue_wait_micros().observe(u64::try_from(waited.as_micros()).unwrap_or(u64::MAX));
        }
        let _exec_span = anomex_obs::span_timed(
            "serve.batch.exec",
            &[("size", anomex_obs::FieldValue::from(batch_size))],
        );
        let results = par_map(&live, |job| {
            let ctx = BatchContext {
                queued: started.saturating_duration_since(job.enqueued),
                batch_size,
            };
            catch_unwind(AssertUnwindSafe(|| (shared.handler)(&job.req, &ctx)))
                .map_err(|payload| ServeError::Internal(panic_message(payload.as_ref())))
        });
        for (job, res) in live.iter().zip(results) {
            match &res {
                Ok(_) => {
                    counters.completed.fetch_add(1, Ordering::Relaxed);
                    obs_completed().incr();
                }
                Err(_) => {
                    counters.failed.fetch_add(1, Ordering::Relaxed);
                    obs_failed().incr();
                }
            };
            job.ticket.fill(res);
        }
    }
}

impl<Q, R> Drop for Batcher<Q, R> {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.arrived.notify_all();
        for worker in self.workers.drain(..) {
            // anomex: allow(swallowed-error) shutdown path; a worker's panic was already reported per request
            let _ = worker.join();
        }
        // Workers drain the queue before exiting; anything still present
        // (a worker died mid-batch) resolves to ShutDown rather than a
        // waiter hang.
        let mut st = lock(&self.shared.state);
        for job in st.queue.drain(..) {
            job.ticket.fill(Err(ServeError::ShutDown));
        }
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "request handler panicked".to_string()
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    fn echo_batcher(cfg: BatchConfig) -> Batcher<u64, u64> {
        Batcher::new(cfg, |&req: &u64, _ctx| req.wrapping_mul(3).wrapping_add(1))
    }

    #[test]
    fn roundtrip_preserves_request_identity() {
        let b = echo_batcher(BatchConfig::default());
        let tickets: Vec<_> = (0..100u64)
            .map(|i| b.submit(i, None).expect("queue has room"))
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait(), Ok((i as u64).wrapping_mul(3).wrapping_add(1)));
        }
        let stats = b.stats();
        assert_eq!(stats.submitted, 100);
        assert_eq!(stats.completed, 100);
        assert_eq!(stats.rejected, 0);
        assert!(stats.max_batch_size <= BatchConfig::default().max_batch);
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        // A gate keeps the single worker busy so the queue backs up
        // deterministically.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let handler_gate = Arc::clone(&gate);
        let b: Batcher<u32, u32> = Batcher::new(
            BatchConfig {
                queue_capacity: 1,
                max_batch: 1,
                max_delay: Duration::ZERO,
                workers: 1,
            },
            move |&req, _ctx| {
                let (open, cv) = &*handler_gate;
                let mut open = open.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                req
            },
        );
        let first = b.submit(1, None).expect("empty queue accepts");
        // Wait for the worker to pull the first job off the queue.
        let t0 = Instant::now();
        while b.queue_len() > 0 {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "worker never started"
            );
            std::thread::yield_now();
        }
        let second = b.submit(2, None).expect("one slot free");
        assert_eq!(b.submit(3, None).err(), Some(ServeError::Rejected));
        assert_eq!(b.stats().rejected, 1);
        // Release the worker: both accepted requests complete.
        {
            let (open, cv) = &*gate;
            *open.lock().unwrap() = true;
            cv.notify_all();
        }
        assert_eq!(first.wait(), Ok(1));
        assert_eq!(second.wait(), Ok(2));
    }

    #[test]
    fn expired_deadline_times_out_instead_of_hanging() {
        let b: Batcher<u32, u32> = Batcher::new(
            BatchConfig {
                max_delay: Duration::from_millis(200),
                max_batch: 8,
                ..BatchConfig::default()
            },
            |&req, _ctx| {
                std::thread::sleep(Duration::from_millis(50));
                req
            },
        );
        let t = b
            .submit(7, Some(Duration::from_millis(1)))
            .expect("queue has room");
        let t0 = Instant::now();
        assert_eq!(t.wait(), Err(ServeError::TimedOut));
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "timeout must be prompt"
        );
    }

    #[test]
    fn panicking_handler_fails_only_its_own_request() {
        let b: Batcher<u32, u32> = Batcher::new(BatchConfig::default(), |&req, _ctx| {
            assert!(req != 13, "unlucky request");
            req
        });
        let bad = b.submit(13, None).expect("queue has room");
        let good = b.submit(14, None).expect("queue has room");
        match bad.wait() {
            Err(ServeError::Internal(msg)) => assert!(msg.contains("unlucky")),
            other => panic!("expected Internal, got {other:?}"),
        }
        assert_eq!(good.wait(), Ok(14));
        assert_eq!(b.stats().failed, 1);
    }

    #[test]
    fn drop_completes_queued_work() {
        let b = echo_batcher(BatchConfig {
            workers: 1,
            max_delay: Duration::from_millis(1),
            ..BatchConfig::default()
        });
        let tickets: Vec<_> = (0..32u64)
            .map(|i| b.submit(i, None).expect("queue has room"))
            .collect();
        drop(b);
        // Workers flush the queue on shutdown: every ticket resolves.
        for (i, t) in tickets.into_iter().enumerate() {
            match t.wait() {
                Ok(v) => assert_eq!(v, (i as u64).wrapping_mul(3).wrapping_add(1)),
                Err(e) => assert_eq!(e, ServeError::ShutDown),
            }
        }
    }

    #[test]
    fn context_reports_batch_size() {
        let b: Batcher<u32, usize> = Batcher::new(
            BatchConfig {
                max_delay: Duration::from_millis(100),
                max_batch: 4,
                workers: 1,
                ..BatchConfig::default()
            },
            |_req, ctx| ctx.batch_size,
        );
        let tickets: Vec<_> = (0..4u32)
            .map(|i| b.submit(i, None).expect("queue has room"))
            .collect();
        let sizes: Vec<usize> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        assert!(sizes.iter().all(|&s| (1..=4).contains(&s)));
    }
}
