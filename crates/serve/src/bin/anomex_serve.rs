//! JSON-lines front end for the anomex explanation service.
//!
//! One JSON request per input line, one JSON response per output line
//! (see `anomex_serve::protocol`). Two transports, both on `std` alone:
//!
//! * `--stdin` (default): read stdin, write stdout, exit at EOF.
//!   Responses come back in submission order.
//! * `--listen ADDR`: line-oriented TCP. The default edge is the
//!   `anomex-reactor` event loop — one poll thread multiplexing every
//!   connection, with per-connection FIFOs preserving pipelined
//!   response order; `--threaded` selects the legacy
//!   thread-per-connection edge instead. Either way all connections
//!   share one scheduler — concurrent clients are what micro-batching
//!   is for.
//!
//! The model registry is sharded by key fingerprint (`--shards`), and
//! `--slo-ms` arms queue-wait admission control: when the p99 (or
//! `--slo-quantile`) of recent queue waits exceeds the budget, new
//! requests are rejected with a typed `overloaded` error instead of
//! queueing behind the backlog. `--replicate-from` pulls a running
//! peer's datasets and warm-fits its models before serving.

use anomex_reactor::ReactorConfig;
use anomex_serve::batch::BatchConfig;
use anomex_serve::front::{response_line, ReactorServer};
use anomex_serve::protocol::{Request, RequestBody, Response};
use anomex_serve::registry::ShardedModelRegistry;
use anomex_serve::service::{ExplanationService, ServeHandle, Submitted};
use anomex_serve::shed::SloConfig;
use anomex_spec::{FrontEdge, ServeSpec};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
anomex_serve — JSON-lines outlier-explanation service

USAGE:
    anomex_serve [--stdin]                 serve stdin → stdout (default)
    anomex_serve --listen ADDR             serve line-oriented TCP (e.g. 127.0.0.1:7878)

OPTIONS:
    --config PATH      JSON ServeSpec (anomex-spec) setting the defaults
                       below; explicit flags still override it
    --queue N          queue capacity before backpressure   [default: 1024]
    --batch N          max requests per batch               [default: 32]
    --delay-ms N       max batch-coalescing delay in ms     [default: 2]
    --workers N        scheduler worker threads             [default: 2]
    --deadline-ms N    per-request deadline in ms           [default: none]
    --shards N         model-registry shards (power of two) [default: 8]
    --slo-ms N         queue-wait SLO in ms; exceeding it sheds
                       new requests with a typed overloaded error
                                                            [default: off]
    --slo-quantile Q   queue-wait quantile held to the SLO  [default: 0.99]
    --threaded         thread-per-connection TCP edge instead of the
                       reactor event loop (only with --listen)
    --replicate-from ADDR   pull datasets + warm-fit models from a
                       running peer before serving
    --trace PATH       write a JSON-lines span/event trace  [default: off]
    --help             print this help
";

struct Options {
    listen: Option<String>,
    threaded: bool,
    cfg: BatchConfig,
    deadline: Option<Duration>,
    shards: usize,
    slo: Option<SloConfig>,
    replicate_from: Option<String>,
    trace: Option<String>,
}

/// Pre-pass: load `--config` (if any) so the spec sets the defaults
/// and every explicit flag still overrides it, regardless of order.
fn load_config(args: &[String]) -> Result<ServeSpec, String> {
    let mut spec = ServeSpec::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--config" {
            let path = it.next().ok_or("--config needs a value")?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read config {path}: {e}"))?;
            spec = ServeSpec::parse(&text).map_err(|e| format!("config {path}: {e}"))?;
        }
    }
    Ok(spec)
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let spec = load_config(args)?;
    let mut opts = Options {
        listen: None,
        threaded: spec.front == FrontEdge::Threaded,
        cfg: BatchConfig {
            queue_capacity: spec.queue,
            max_batch: spec.batch,
            max_delay: Duration::from_millis(spec.delay_ms),
            workers: spec.workers,
        },
        deadline: spec.deadline_ms.map(Duration::from_millis),
        shards: spec.shards,
        slo: None,
        replicate_from: None,
        trace: None,
    };
    let mut threaded_flag = false;
    let mut slo_ms: Option<u64> = spec.slo.map(|s| s.limit_ms);
    let mut slo_quantile: f64 = spec.slo.map_or(0.99, |s| s.quantile);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--config" => {
                // Consumed by the pre-pass; skip the path operand.
                value("--config")?;
            }
            "--stdin" => opts.listen = None,
            "--listen" => opts.listen = Some(value("--listen")?.clone()),
            "--threaded" => {
                opts.threaded = true;
                threaded_flag = true;
            }
            "--queue" => {
                opts.cfg.queue_capacity = parse_num(value("--queue")?, "--queue")?;
            }
            "--batch" => {
                opts.cfg.max_batch = parse_num(value("--batch")?, "--batch")?;
            }
            "--delay-ms" => {
                let ms: u64 = parse_num(value("--delay-ms")?, "--delay-ms")?;
                opts.cfg.max_delay = Duration::from_millis(ms);
            }
            "--workers" => {
                opts.cfg.workers = parse_num(value("--workers")?, "--workers")?;
            }
            "--deadline-ms" => {
                let ms: u64 = parse_num(value("--deadline-ms")?, "--deadline-ms")?;
                opts.deadline = Some(Duration::from_millis(ms));
            }
            "--shards" => {
                opts.shards = parse_num(value("--shards")?, "--shards")?;
            }
            "--slo-ms" => {
                slo_ms = Some(parse_num(value("--slo-ms")?, "--slo-ms")?);
            }
            "--slo-quantile" => {
                let raw = value("--slo-quantile")?;
                slo_quantile = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|q| (0.0..=1.0).contains(q))
                    .ok_or_else(|| {
                        format!("--slo-quantile needs a value in [0, 1], got '{raw}'")
                    })?;
            }
            "--replicate-from" => {
                opts.replicate_from = Some(value("--replicate-from")?.clone());
            }
            "--trace" => opts.trace = Some(value("--trace")?.clone()),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if threaded_flag && opts.listen.is_none() {
        return Err("--threaded only applies with --listen".to_string());
    }
    opts.slo = slo_ms.map(|ms| SloConfig {
        queue_wait_limit_micros: ms.saturating_mul(1_000),
        quantile: slo_quantile,
        ..SloConfig::default()
    });
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse::<T>()
        .map_err(|_| format!("{flag} needs a non-negative integer, got '{value}'"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &opts.trace {
        match anomex_obs::JsonLinesSubscriber::to_file(path) {
            Ok(sub) => anomex_obs::install(Arc::new(sub)),
            Err(e) => {
                eprintln!("error: cannot open trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let service = Arc::new(ExplanationService::with_sharded_registry(
        ShardedModelRegistry::new(opts.shards),
    ));
    let handle = Arc::new(ServeHandle::start_with_slo(
        service,
        opts.cfg,
        opts.deadline,
        opts.slo.clone(),
    ));
    if let Some(peer) = &opts.replicate_from {
        let resp = handle.roundtrip(Request {
            id: 0,
            body: RequestBody::Replicate {
                from: Some(peer.clone()),
            },
        });
        match (resp.ok, resp.replication) {
            (true, Some(report)) => eprintln!(
                "anomex_serve replicated from {peer}: {} datasets, {} models warm",
                report.datasets_loaded, report.models_fitted
            ),
            _ => {
                eprintln!(
                    "error: replication from {peer} failed: {}",
                    resp.error.unwrap_or_else(|| "unknown error".to_string())
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let code = match &opts.listen {
        None => run_stdin(&handle),
        Some(addr) if opts.threaded => run_tcp_threaded(&handle, addr),
        Some(addr) => run_tcp_reactor(&handle, addr),
    };
    if opts.trace.is_some() {
        // Drop the installed subscriber so its Drop impl flushes the file.
        anomex_obs::uninstall();
    }
    code
}

/// Stdin mode: a reaper thread prints responses in submission order
/// while the main thread keeps reading, so consecutive lines can share
/// a batch.
fn run_stdin(handle: &Arc<ServeHandle>) -> ExitCode {
    let (tx, rx) = mpsc::channel::<Submitted>();
    let reaper = std::thread::spawn(move || {
        let stdout = std::io::stdout();
        let mut out = BufWriter::new(stdout.lock());
        for submitted in rx {
            let resp = submitted.resolve();
            // Interactive pipes expect prompt responses; flushing per
            // line costs little at this throughput. A failed write or
            // flush means the consumer is gone — stop the reaper.
            if write_response(&mut out, &resp).is_err() || out.flush().is_err() {
                return;
            }
        }
    });
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if let Some(submitted) = handle.submit_line(&line) {
            if tx.send(submitted).is_err() {
                break;
            }
        }
    }
    drop(tx);
    if reaper.join().is_err() {
        eprintln!("error: response writer panicked; some responses may be missing");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Default TCP mode: the non-blocking reactor event loop.
fn run_tcp_reactor(handle: &Arc<ServeHandle>, addr: &str) -> ExitCode {
    let server = match ReactorServer::start(Arc::clone(handle), addr, ReactorConfig::default()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot listen on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("anomex_serve listening on {} (reactor)", server.addr());
    match server.join() {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: reactor loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Legacy TCP mode: one thread per connection, one shared scheduler.
fn run_tcp_threaded(handle: &Arc<ServeHandle>, addr: &str) -> ExitCode {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot listen on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("anomex_serve listening on {addr} (threaded)");
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let handle = Arc::clone(handle);
                let spawned = std::thread::Builder::new()
                    .name("anomex-serve-conn".to_string())
                    .spawn(move || serve_connection(&handle, stream));
                if let Err(e) = spawned {
                    // The connection drops; the listener keeps serving.
                    eprintln!("warning: cannot spawn connection thread: {e}");
                }
            }
            Err(e) => eprintln!("warning: failed connection: {e}"),
        }
    }
    ExitCode::SUCCESS
}

fn serve_connection(handle: &ServeHandle, stream: TcpStream) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let Some(submitted) = handle.submit_line(&line) else {
            continue;
        };
        let resp = submitted.resolve();
        if write_response(&mut writer, &resp).is_err() || writer.flush().is_err() {
            break;
        }
    }
}

fn write_response<W: Write>(out: &mut W, resp: &Response) -> std::io::Result<()> {
    writeln!(out, "{}", response_line(resp))
}
