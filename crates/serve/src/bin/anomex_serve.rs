//! JSON-lines front end for the anomex explanation service.
//!
//! One JSON request per input line, one JSON response per output line
//! (see `anomex_serve::protocol`). Two transports, both on `std` alone:
//!
//! * `--stdin` (default): read stdin, write stdout, exit at EOF.
//!   Responses come back in submission order.
//! * `--listen ADDR`: line-oriented TCP, one thread per connection,
//!   all connections sharing one scheduler — concurrent clients are
//!   what micro-batching is for.

use anomex_serve::batch::BatchConfig;
use anomex_serve::protocol::Response;
use anomex_serve::service::{ExplanationService, ServeHandle, Submitted};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
anomex_serve — JSON-lines outlier-explanation service

USAGE:
    anomex_serve [--stdin]                 serve stdin → stdout (default)
    anomex_serve --listen ADDR             serve line-oriented TCP (e.g. 127.0.0.1:7878)

OPTIONS:
    --queue N          queue capacity before backpressure   [default: 1024]
    --batch N          max requests per batch               [default: 32]
    --delay-ms N       max batch-coalescing delay in ms     [default: 2]
    --workers N        scheduler worker threads             [default: 2]
    --deadline-ms N    per-request deadline in ms           [default: none]
    --trace PATH       write a JSON-lines span/event trace  [default: off]
    --help             print this help
";

struct Options {
    listen: Option<String>,
    cfg: BatchConfig,
    deadline: Option<Duration>,
    trace: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        listen: None,
        cfg: BatchConfig::default(),
        deadline: None,
        trace: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--stdin" => opts.listen = None,
            "--listen" => opts.listen = Some(value("--listen")?.clone()),
            "--queue" => {
                opts.cfg.queue_capacity = parse_num(value("--queue")?, "--queue")?;
            }
            "--batch" => {
                opts.cfg.max_batch = parse_num(value("--batch")?, "--batch")?;
            }
            "--delay-ms" => {
                let ms: u64 = parse_num(value("--delay-ms")?, "--delay-ms")?;
                opts.cfg.max_delay = Duration::from_millis(ms);
            }
            "--workers" => {
                opts.cfg.workers = parse_num(value("--workers")?, "--workers")?;
            }
            "--deadline-ms" => {
                let ms: u64 = parse_num(value("--deadline-ms")?, "--deadline-ms")?;
                opts.deadline = Some(Duration::from_millis(ms));
            }
            "--trace" => opts.trace = Some(value("--trace")?.clone()),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse::<T>()
        .map_err(|_| format!("{flag} needs a non-negative integer, got '{value}'"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &opts.trace {
        match anomex_obs::JsonLinesSubscriber::to_file(path) {
            Ok(sub) => anomex_obs::install(Arc::new(sub)),
            Err(e) => {
                eprintln!("error: cannot open trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let service = Arc::new(ExplanationService::new());
    let handle = Arc::new(ServeHandle::start(service, opts.cfg, opts.deadline));
    let code = match &opts.listen {
        None => run_stdin(&handle),
        Some(addr) => run_tcp(&handle, addr),
    };
    if opts.trace.is_some() {
        // Drop the installed subscriber so its Drop impl flushes the file.
        anomex_obs::uninstall();
    }
    code
}

/// Stdin mode: a reaper thread prints responses in submission order
/// while the main thread keeps reading, so consecutive lines can share
/// a batch.
fn run_stdin(handle: &Arc<ServeHandle>) -> ExitCode {
    let (tx, rx) = mpsc::channel::<Submitted>();
    let reaper = std::thread::spawn(move || {
        let stdout = std::io::stdout();
        let mut out = BufWriter::new(stdout.lock());
        for submitted in rx {
            let resp = submitted.resolve();
            // Interactive pipes expect prompt responses; flushing per
            // line costs little at this throughput. A failed write or
            // flush means the consumer is gone — stop the reaper.
            if write_response(&mut out, &resp).is_err() || out.flush().is_err() {
                return;
            }
        }
    });
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if let Some(submitted) = handle.submit_line(&line) {
            if tx.send(submitted).is_err() {
                break;
            }
        }
    }
    drop(tx);
    if reaper.join().is_err() {
        eprintln!("error: response writer panicked; some responses may be missing");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// TCP mode: one thread per connection, one shared scheduler.
fn run_tcp(handle: &Arc<ServeHandle>, addr: &str) -> ExitCode {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot listen on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("anomex_serve listening on {addr}");
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let handle = Arc::clone(handle);
                let spawned = std::thread::Builder::new()
                    .name("anomex-serve-conn".to_string())
                    .spawn(move || serve_connection(&handle, stream));
                if let Err(e) = spawned {
                    // The connection drops; the listener keeps serving.
                    eprintln!("warning: cannot spawn connection thread: {e}");
                }
            }
            Err(e) => eprintln!("warning: failed connection: {e}"),
        }
    }
    ExitCode::SUCCESS
}

fn serve_connection(handle: &ServeHandle, stream: TcpStream) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let Some(submitted) = handle.submit_line(&line) else {
            continue;
        };
        let resp = submitted.resolve();
        if write_response(&mut writer, &resp).is_err() || writer.flush().is_err() {
            break;
        }
    }
}

fn write_response<W: Write>(out: &mut W, resp: &Response) -> std::io::Result<()> {
    let json = serde_json::to_string(resp).unwrap_or_else(|e| {
        format!(
            "{{\"id\":{},\"ok\":false,\"error\":\"serialize: {e}\"}}",
            resp.id
        )
    });
    writeln!(out, "{json}")
}
