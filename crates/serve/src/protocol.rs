//! The wire protocol: one JSON object per line in, one per line out.
//!
//! Requests carry a client-chosen `id` echoed verbatim in the response,
//! so clients may pipeline without ordering assumptions. The operation
//! is selected by the `"op"` tag:
//!
//! ```json
//! {"id": 1, "op": "load", "dataset": "toy", "rows": [[0.0, 0.1], [1.0, 0.9]]}
//! {"id": 2, "op": "score", "dataset": "toy", "detector": "lof:k=3", "point": 0}
//! {"id": 6, "op": "append", "dataset": "toy", "rows": [[0.5, 0.5]], "window": 10000}
//! {"id": 3, "op": "explain", "dataset": "toy", "detector": "lof",
//!  "explainer": "beam", "point": 0, "dim": 2}
//! {"id": 4, "op": "summarize", "dataset": "hics14", "detector": "iforest",
//!  "explainer": "lookout:budget=3", "points": [813, 911], "dim": 2}
//! {"id": 5, "op": "stats"}
//! ```
//!
//! Responses always carry `id` and `ok`; the payload fields are present
//! only when meaningful (`error` on failure, `score`/`explanation`/
//! `dataset`/`service` per operation, `timing` on every served request).

use crate::batch::BatchStats;
use crate::registry::RegistryStats;
use anomex_core::RunStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The operation and its arguments.
    #[serde(flatten)]
    pub body: RequestBody,
}

/// The operation carried by a request, tagged by the `"op"` field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum RequestBody {
    /// Registers a dataset under a name (row-major values). Re-using a
    /// name is an error: fitted models are keyed by dataset name, so
    /// silently replacing the data would serve stale models.
    Load {
        /// Name to register the dataset under.
        dataset: String,
        /// Row-major data values.
        rows: Vec<Vec<f64>>,
    },
    /// Appends rows to an already-registered dataset (row-major values,
    /// same width). Fitted models of the dataset migrate in place when
    /// their detector supports incremental extension
    /// (`FittedModel::append_rows`); the rest refit lazily on next use.
    Append {
        /// Name of the dataset to extend (registered or preset).
        dataset: String,
        /// Row-major data values to append.
        rows: Vec<Vec<f64>>,
        /// Sliding-window bound: keep only the most recent `window`
        /// rows after the append. Dropping old rows invalidates
        /// incremental migration, so every model refits lazily.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        window: Option<usize>,
    },
    /// The standardized outlyingness score of one point in one subspace,
    /// served from the fitted-model registry.
    Score {
        /// Registered dataset name (or a `hicsN[@seed]` preset).
        dataset: String,
        /// Detector spec, e.g. `"lof"`, `"lof:k=5"`, `"iforest:trees=50"`.
        detector: String,
        /// Subspace feature indices; omitted = the full feature space.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        subspace: Option<Vec<usize>>,
        /// Row index of the point to score.
        point: usize,
    },
    /// A ranked subspace explanation of one point.
    Explain {
        /// Registered dataset name (or a `hicsN[@seed]` preset).
        dataset: String,
        /// Detector spec.
        #[serde(default, skip_serializing_if = "String::is_empty")]
        detector: String,
        /// Explainer spec, e.g. `"beam"`, `"lookout:budget=3"`.
        #[serde(default, skip_serializing_if = "String::is_empty")]
        explainer: String,
        /// Inline canonical pipeline spec — a compact string
        /// (`"beam+lof:k=5"`) or a `PipelineSpec` JSON object — instead
        /// of the separate `detector`/`explainer` fields.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        pipeline: Option<serde_json::Value>,
        /// Row index of the point to explain.
        point: usize,
        /// Explanation dimensionality (number of features).
        dim: usize,
    },
    /// A ranked subspace summary of a set of points.
    Summarize {
        /// Registered dataset name (or a `hicsN[@seed]` preset).
        dataset: String,
        /// Detector spec.
        #[serde(default, skip_serializing_if = "String::is_empty")]
        detector: String,
        /// Explainer spec (a summarizer, e.g. `"lookout"`, `"hics"`).
        #[serde(default, skip_serializing_if = "String::is_empty")]
        explainer: String,
        /// Inline canonical pipeline spec — a compact string
        /// (`"lookout+lof"`) or a `PipelineSpec` JSON object — instead
        /// of the separate `detector`/`explainer` fields.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        pipeline: Option<serde_json::Value>,
        /// Row indices of the points to summarize.
        points: Vec<usize>,
        /// Explanation dimensionality (number of features).
        dim: usize,
    },
    /// Deterministic dataset characteristics (dimensionality, density
    /// dispersion, contamination estimate) — the recommender's input.
    Profile {
        /// Registered dataset name (or a `hicsN[@seed]` preset).
        dataset: String,
    },
    /// A rule-based pipeline recommendation from the dataset's profile,
    /// with a machine-readable reasoning trace.
    Recommend {
        /// Registered dataset name (or a `hicsN[@seed]` preset).
        dataset: String,
        /// `"point"` (per-point explanation, the default) or
        /// `"summary"` (set-level summarization).
        #[serde(default = "default_task", skip_serializing_if = "is_default_task")]
        task: String,
    },
    /// Model-set replication, for running several processes over one
    /// model set. Without `from`, **exports** this process's replication
    /// manifest (datasets + ready model keys). With `from`, **imports**:
    /// connects to the peer at `"host:port"`, fetches its manifest, then
    /// registers the datasets and warm-fits the models locally.
    Replicate {
        /// Peer address to replicate from; omitted = export a manifest.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        from: Option<String>,
    },
    /// Service counters: registry, scheduler and dataset census.
    Stats,
}

fn default_task() -> String {
    "point".to_string()
}

#[allow(clippy::ptr_arg)] // serde's skip_serializing_if passes &String
fn is_default_task(task: &String) -> bool {
    task == "point"
}

/// One ranked subspace of an explanation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedEntry {
    /// Feature indices of the subspace (sorted ascending).
    pub subspace: Vec<usize>,
    /// The score the explainer assigned it (larger = better explanation).
    pub score: f64,
}

/// Shape of a registered dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetInfo {
    /// Registered name.
    pub name: String,
    /// Number of rows.
    pub n_rows: usize,
    /// Number of features.
    pub n_features: usize,
}

/// One fitted model named by its public key components — what a
/// replication manifest lists, spelled with the dataset's public name so
/// the importer (whose append epochs start fresh) can rebuild the key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelDescriptor {
    /// Public dataset name (append-epoch qualifier stripped).
    pub dataset: String,
    /// Canonical detector spec, e.g. `"lof:k=15"`.
    pub detector: String,
    /// Subspace feature indices, ascending.
    pub subspace: Vec<usize>,
}

/// One registered dataset with its rows, as replication ships it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetRows {
    /// Registered name.
    pub name: String,
    /// Row-major data values (the current append generation's view).
    pub rows: Vec<Vec<f64>>,
}

/// Everything a fresh process needs to serve this process's model set:
/// the datasets (with rows) and the keys of every ready fitted model.
/// Models themselves are not shipped — fits are deterministic, so the
/// importer refits the same keys and arrives at bit-identical scores.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplicationManifest {
    /// Registered datasets with their rows.
    pub datasets: Vec<DatasetRows>,
    /// Keys of every ready fitted model, deterministic shard-walk order.
    pub models: Vec<ModelDescriptor>,
}

/// What a replication import accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationReport {
    /// Datasets registered from the manifest.
    pub datasets_loaded: usize,
    /// Datasets skipped because the name was already registered.
    pub datasets_skipped: usize,
    /// Models warm-fitted from the manifest's keys.
    pub models_fitted: usize,
    /// Models skipped (unparseable detector spec or failed fit).
    pub models_skipped: usize,
}

/// Service-wide counters returned by the `stats` operation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Fitted-model registry counters, aggregated over all shards.
    pub registry: RegistryStats,
    /// How many shards the registry key space is split across.
    #[serde(default)]
    pub registry_shards: usize,
    /// Resident entries per registry shard (shard order) — the balance
    /// diagnostic.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub registry_shard_entries: Vec<usize>,
    /// Micro-batching scheduler counters.
    pub batch: BatchStats,
    /// Registered datasets.
    pub datasets: usize,
    /// Process-wide `anomex-obs` counters by name, cumulative since
    /// process start (engine, detector-kernel and scheduler meters).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub obs: BTreeMap<String, u64>,
}

/// Per-request timing, folded into every served response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeTiming {
    /// Microseconds the request spent queued before its batch executed.
    pub queue_micros: u64,
    /// Microseconds the request's handler spent executing.
    pub exec_micros: u64,
    /// Number of requests in the batch that served this request.
    pub batch_size: usize,
    /// Engine telemetry of the pass, for explain/summarize operations.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub run: Option<RunStats>,
}

/// Machine-readable failure category, so clients can branch on the
/// *kind* of failure (retry on `overloaded`, fix the request on
/// `bad_request`, give up on `fit_failed`) without parsing prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ErrorCode {
    /// Malformed or out-of-range request (parse error, bad point/dim).
    BadRequest,
    /// The named dataset is neither registered nor a known preset.
    UnknownDataset,
    /// Unknown or invalid detector/explainer spec.
    UnknownSpec,
    /// The model fit failed (degenerate data, fit panic).
    FitFailed,
    /// Rejected by backpressure; safe to retry after a pause.
    Overloaded,
    /// The request's deadline elapsed before completion.
    TimedOut,
    /// The service is shutting down.
    ShuttingDown,
    /// Unexpected internal failure (handler panic, serialization).
    Internal,
}

/// One response line.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The request's correlation id (0 when the request had none, e.g.
    /// on a parse failure).
    pub id: u64,
    /// Whether the operation succeeded.
    pub ok: bool,
    /// Machine-readable failure category, present iff `ok` is false and
    /// the failure is classified.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub code: Option<ErrorCode>,
    /// Failure description, present iff `ok` is false.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
    /// Client retry hint in milliseconds, present on `overloaded`
    /// sheds: the admission decision cannot change sooner.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub retry_after_ms: Option<u64>,
    /// The requested score (for `score`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub score: Option<f64>,
    /// The ranked explanation, best first (for `explain`/`summarize`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub explanation: Option<Vec<RankedEntry>>,
    /// The registered dataset's shape (for `load`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dataset: Option<DatasetInfo>,
    /// Service counters (for `stats`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub service: Option<ServiceStats>,
    /// The dataset's profile (for `profile`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub profile: Option<serde_json::Value>,
    /// The recommended pipeline with its reasoning trace (for
    /// `recommend`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub recommendation: Option<serde_json::Value>,
    /// The exported model-set manifest (for `replicate` without `from`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub manifest: Option<ReplicationManifest>,
    /// The import report (for `replicate` with `from`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub replication: Option<ReplicationReport>,
    /// Per-request timing (on every served request).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub timing: Option<ServeTiming>,
}

impl Response {
    /// An error response with no machine-readable category (legacy
    /// callers; prefer [`Response::failure_coded`]).
    #[must_use]
    pub fn failure(id: u64, error: impl Into<String>) -> Self {
        Response {
            id,
            ok: false,
            error: Some(error.into()),
            ..Response::default()
        }
    }

    /// An error response carrying a typed [`ErrorCode`].
    #[must_use]
    pub fn failure_coded(id: u64, code: ErrorCode, error: impl Into<String>) -> Self {
        Response {
            id,
            ok: false,
            code: Some(code),
            error: Some(error.into()),
            ..Response::default()
        }
    }

    /// A success skeleton; callers fill the payload fields.
    #[must_use]
    pub fn success(id: u64) -> Self {
        Response {
            id,
            ok: true,
            ..Response::default()
        }
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_json() {
        let req = Request {
            id: 7,
            body: RequestBody::Score {
                dataset: "toy".into(),
                detector: "lof:k=5".into(),
                subspace: Some(vec![0, 2]),
                point: 3,
            },
        };
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"op\":\"score\""), "{json}");
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn stats_is_a_bare_op() {
        let req: Request = serde_json::from_str(r#"{"id": 9, "op": "stats"}"#).unwrap();
        assert_eq!(req.body, RequestBody::Stats);
    }

    #[test]
    fn unknown_op_is_rejected() {
        let res: Result<Request, _> = serde_json::from_str(r#"{"id": 1, "op": "frobnicate"}"#);
        assert!(res.is_err());
    }

    #[test]
    fn response_omits_empty_fields() {
        let json = serde_json::to_string(&Response::success(3)).unwrap();
        assert_eq!(json, r#"{"id":3,"ok":true}"#);
        let err = serde_json::to_string(&Response::failure(4, "nope")).unwrap();
        assert!(err.contains("\"error\":\"nope\""), "{err}");
        assert!(!err.contains("score"), "{err}");
        assert!(!err.contains("code"), "uncoded failure omits code: {err}");
    }

    #[test]
    fn coded_failures_serialize_snake_case() {
        let err = serde_json::to_string(&Response::failure_coded(
            5,
            ErrorCode::UnknownDataset,
            "no such dataset",
        ))
        .unwrap();
        assert!(err.contains("\"code\":\"unknown_dataset\""), "{err}");
        let back: Response = serde_json::from_str(&err).unwrap();
        assert_eq!(back.code, Some(ErrorCode::UnknownDataset));
    }

    #[test]
    fn explain_request_parses() {
        let line = r#"{"id": 2, "op": "explain", "dataset": "toy", "detector": "lof",
                       "explainer": "beam", "point": 0, "dim": 2}"#;
        let req: Request = serde_json::from_str(line).unwrap();
        match req.body {
            RequestBody::Explain {
                point,
                dim,
                pipeline,
                ..
            } => {
                assert_eq!(point, 0);
                assert_eq!(dim, 2);
                assert_eq!(pipeline, None);
            }
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn legacy_explain_requests_serialize_without_new_fields() {
        let req = Request {
            id: 2,
            body: RequestBody::Explain {
                dataset: "toy".into(),
                detector: "lof".into(),
                explainer: "beam".into(),
                pipeline: None,
                point: 0,
                dim: 2,
            },
        };
        let json = serde_json::to_string(&req).unwrap();
        assert!(!json.contains("pipeline"), "{json}");
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn inline_pipeline_requests_parse() {
        let line = r#"{"id": 6, "op": "summarize", "dataset": "toy",
                       "pipeline": "lookout:budget=3+lof", "points": [1, 2], "dim": 2}"#;
        let req: Request = serde_json::from_str(line).unwrap();
        match req.body {
            RequestBody::Summarize {
                detector,
                explainer,
                pipeline,
                ..
            } => {
                assert!(detector.is_empty());
                assert!(explainer.is_empty());
                assert_eq!(pipeline, Some(serde_json::json!("lookout:budget=3+lof")));
            }
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn append_requests_parse_and_roundtrip() {
        let line = r#"{"id": 10, "op": "append", "dataset": "toy",
                       "rows": [[0.5, 0.5], [0.6, 0.4]]}"#;
        let req: Request = serde_json::from_str(line).unwrap();
        assert_eq!(
            req.body,
            RequestBody::Append {
                dataset: "toy".into(),
                rows: vec![vec![0.5, 0.5], vec![0.6, 0.4]],
                window: None,
            }
        );
        // The window bound is optional on the wire and elided when unset.
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"op\":\"append\""), "{json}");
        assert!(!json.contains("window"), "{json}");
        let windowed: Request = serde_json::from_str(
            r#"{"id": 11, "op": "append", "dataset": "toy", "rows": [[1.0, 1.0]], "window": 500}"#,
        )
        .unwrap();
        match windowed.body {
            RequestBody::Append { window, .. } => assert_eq!(window, Some(500)),
            other => panic!("wrong body: {other:?}"),
        }
        let back: Request =
            serde_json::from_str(&serde_json::to_string(&windowed).unwrap()).unwrap();
        assert_eq!(back, windowed);
    }

    #[test]
    fn replicate_requests_parse_in_both_forms() {
        let export: Request = serde_json::from_str(r#"{"id": 12, "op": "replicate"}"#).unwrap();
        assert_eq!(export.body, RequestBody::Replicate { from: None });
        let json = serde_json::to_string(&export).unwrap();
        assert!(!json.contains("from"), "export form elides from: {json}");

        let import: Request =
            serde_json::from_str(r#"{"id": 13, "op": "replicate", "from": "127.0.0.1:7878"}"#)
                .unwrap();
        assert_eq!(
            import.body,
            RequestBody::Replicate {
                from: Some("127.0.0.1:7878".into())
            }
        );
    }

    #[test]
    fn replication_manifest_roundtrips() {
        let manifest = ReplicationManifest {
            datasets: vec![DatasetRows {
                name: "toy".into(),
                rows: vec![vec![0.0, 1.0], vec![1.0, 0.0]],
            }],
            models: vec![ModelDescriptor {
                dataset: "toy".into(),
                detector: "lof:k=15".into(),
                subspace: vec![0, 1],
            }],
        };
        let mut resp = Response::success(12);
        resp.manifest = Some(manifest.clone());
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"manifest\""), "{json}");
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back.manifest, Some(manifest));
        assert_eq!(back.replication, None);
    }

    #[test]
    fn profile_and_recommend_requests_parse() {
        let req: Request =
            serde_json::from_str(r#"{"id": 7, "op": "profile", "dataset": "hics14"}"#).unwrap();
        assert_eq!(
            req.body,
            RequestBody::Profile {
                dataset: "hics14".into()
            }
        );
        let req: Request =
            serde_json::from_str(r#"{"id": 8, "op": "recommend", "dataset": "hics14"}"#).unwrap();
        assert_eq!(
            req.body,
            RequestBody::Recommend {
                dataset: "hics14".into(),
                task: "point".into(),
            }
        );
        let req: Request = serde_json::from_str(
            r#"{"id": 9, "op": "recommend", "dataset": "hics14", "task": "summary"}"#,
        )
        .unwrap();
        match req.body {
            RequestBody::Recommend { task, .. } => assert_eq!(task, "summary"),
            other => panic!("wrong body: {other:?}"),
        }
    }
}
