//! SLO-driven load shedding for the serving layer.
//!
//! The batcher already rejects when its queue is *full*; that is a
//! memory bound, not a latency bound. A queue of 1024 requests that each
//! wait 400ms is "healthy" by the capacity test while every client
//! misses its deadline. The [`LoadShedder`] closes that gap: it watches
//! the `serve.batch.queue_wait_micros` log2 histogram that the batcher
//! already maintains, and when a configured quantile of the *recent
//! window* exceeds the SLO it starts answering new requests with a typed
//! `overloaded` error before they ever enter the queue.
//!
//! ## Semantics
//!
//! * Evaluation happens at most once per `eval_interval`, on the
//!   *delta* between cumulative histogram snapshots
//!   ([`HistogramSnapshot::since`]), so old overloads cannot haunt the
//!   estimate forever.
//! * The quantile estimate is [`HistogramSnapshot::quantile_upper_bound`]
//!   — the top edge of the log2 bucket holding the quantile rank. The
//!   error is one-sided (at most 2x high), which for an SLO check is the
//!   conservative direction: we may shed slightly early, never late.
//! * Windows with fewer than `min_observations` samples release the
//!   shed. This is also the recovery path: while shedding, requests are
//!   rejected before they can be observed waiting, the window drains,
//!   and the shedder re-admits traffic to probe the queue again. The
//!   engage/release cycle is the probe.
//!
//! Decisions between evaluations are cached, so the per-request cost on
//! the submit path is one mutex lock and an `Instant` comparison; the
//! shed-state lock is a leaf (nothing else is locked while it is held).

use std::sync::Mutex;
use std::time::{Duration, Instant};

use anomex_obs::{Counter, Gauge, Histogram, HistogramSnapshot};

/// The histogram the batcher feeds with per-request queue-wait times.
pub(crate) const QUEUE_WAIT_METRIC: &str = "serve.batch.queue_wait_micros";

/// Latency SLO driving admission control.
#[derive(Clone, Debug)]
pub struct SloConfig {
    /// Queue-wait budget in microseconds; the shed engages when
    /// `quantile` of the recent window exceeds it.
    pub queue_wait_limit_micros: u64,
    /// Which quantile of queue wait is held to the budget (default 0.99).
    pub quantile: f64,
    /// Minimum samples a window needs before its quantile is trusted;
    /// sparser windows release the shed (default 32).
    pub min_observations: u64,
    /// How often the window is re-evaluated; decisions are cached in
    /// between (default 100ms).
    pub eval_interval: Duration,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            queue_wait_limit_micros: 50_000,
            quantile: 0.99,
            min_observations: 32,
            eval_interval: Duration::from_millis(100),
        }
    }
}

struct ShedState {
    /// Cumulative snapshot at the start of the current window.
    baseline: HistogramSnapshot,
    last_eval: Instant,
    shedding: bool,
}

/// Watches the queue-wait histogram and decides, per request, whether to
/// admit it. Shared across submit paths behind an `Arc`.
pub struct LoadShedder {
    slo: SloConfig,
    source: &'static Histogram,
    state: Mutex<ShedState>,
    // Meters resolved once so the hot path never touches the
    // obs-registry lock.
    shed_requests: &'static Counter,
    evaluations: &'static Counter,
    engaged: &'static Counter,
    active: &'static Gauge,
    estimate: &'static Gauge,
}

impl LoadShedder {
    /// A shedder over the live batcher queue-wait histogram.
    pub fn new(slo: SloConfig) -> Self {
        Self::with_histogram(slo, anomex_obs::histogram(QUEUE_WAIT_METRIC))
    }

    /// A shedder over an explicit histogram — lets tests drive the
    /// window without racing the global batcher metric.
    pub fn with_histogram(slo: SloConfig, source: &'static Histogram) -> Self {
        LoadShedder {
            slo,
            source,
            state: Mutex::new(ShedState {
                baseline: source.snapshot(),
                last_eval: Instant::now(),
                shedding: false,
            }),
            shed_requests: anomex_obs::counter("serve.shed.shed_requests"),
            evaluations: anomex_obs::counter("serve.shed.evaluations"),
            engaged: anomex_obs::counter("serve.shed.engaged"),
            active: anomex_obs::gauge("serve.shed.active"),
            estimate: anomex_obs::gauge("serve.slo.queue_wait_quantile_micros"),
        }
    }

    /// The configuration this shedder enforces.
    pub fn slo(&self) -> &SloConfig {
        &self.slo
    }

    /// Client retry hint: the shed decision cannot change sooner than
    /// the next window evaluation, one `eval_interval` away. Clamped to
    /// ≥ 1ms so the hint never degenerates to "retry immediately".
    #[must_use]
    pub fn retry_after_ms(&self) -> u64 {
        u64::try_from(self.slo.eval_interval.as_millis())
            .unwrap_or(u64::MAX)
            .max(1)
    }

    /// Should the request at hand be rejected? Also counts the shed when
    /// it says yes, so callers only need to map the answer to the wire.
    pub fn should_shed(&self) -> bool {
        let decision = self.decide(Instant::now());
        if decision {
            self.shed_requests.incr();
        }
        decision
    }

    /// The cached decision, re-evaluated when the window is due. Split
    /// from `should_shed` so tests can step time explicitly.
    fn decide(&self, now: Instant) -> bool {
        let mut state = match self.state.lock() {
            Ok(g) => g,
            // A poisoned shed lock must fail open: dropping admission
            // control degrades latency, not correctness.
            Err(_) => return false,
        };
        if now.duration_since(state.last_eval) < self.slo.eval_interval {
            return state.shedding;
        }
        state.last_eval = now;
        self.evaluations.incr();

        let cumulative = self.source.snapshot();
        let window = cumulative.since(&state.baseline);
        state.baseline = cumulative;

        let next = if window.count < self.slo.min_observations {
            // Too sparse to judge — and, while shedding, the natural
            // consequence of shedding. Either way: admit and probe.
            false
        } else {
            let est = window.quantile_upper_bound(self.slo.quantile);
            self.estimate.set(est);
            est > self.slo.queue_wait_limit_micros
        };
        if next && !state.shedding {
            self.engaged.incr();
        }
        state.shedding = next;
        self.active.set(next as u64);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slo(limit: u64) -> SloConfig {
        SloConfig {
            queue_wait_limit_micros: limit,
            quantile: 0.99,
            min_observations: 8,
            eval_interval: Duration::from_millis(0),
        }
    }

    #[test]
    fn engages_when_the_window_quantile_exceeds_the_limit() {
        let h = anomex_obs::histogram("test.shed.engage");
        let shedder = LoadShedder::with_histogram(slo(1_000), h);
        assert!(!shedder.should_shed(), "empty window admits");

        for _ in 0..100 {
            h.observe(60_000);
        }
        assert!(shedder.should_shed(), "p99 of 60ms must trip a 1ms SLO");
        assert_eq!(anomex_obs::gauge("serve.shed.active").get(), 1);
    }

    #[test]
    fn releases_once_the_window_goes_quiet() {
        let h = anomex_obs::histogram("test.shed.release");
        let shedder = LoadShedder::with_histogram(slo(1_000), h);
        for _ in 0..100 {
            h.observe(60_000);
        }
        assert!(shedder.should_shed());
        // While shedding, nothing new is observed waiting; the next
        // window is empty and the shed releases to probe.
        assert!(!shedder.should_shed(), "sparse window releases the shed");
    }

    #[test]
    fn healthy_latency_never_sheds() {
        let h = anomex_obs::histogram("test.shed.healthy");
        let shedder = LoadShedder::with_histogram(slo(100_000), h);
        for _ in 0..1_000 {
            h.observe(500);
        }
        assert!(!shedder.should_shed(), "sub-SLO waits must be admitted");
    }

    #[test]
    fn sparse_windows_are_not_judged() {
        let h = anomex_obs::histogram("test.shed.sparse");
        let shedder = LoadShedder::with_histogram(slo(1), h);
        for _ in 0..4 {
            h.observe(1_000_000); // terrible, but only 4 samples < min 8
        }
        assert!(!shedder.should_shed());
    }

    #[test]
    fn decisions_are_cached_between_evaluations() {
        let h = anomex_obs::histogram("test.shed.cached");
        let cfg = SloConfig {
            eval_interval: Duration::from_secs(3_600),
            min_observations: 8,
            ..slo(1_000)
        };
        let shedder = LoadShedder::with_histogram(cfg, h);
        // First call inside the interval returns the constructed state
        // (admitting) and must not evaluate.
        for _ in 0..100 {
            h.observe(60_000);
        }
        let before = anomex_obs::counter("serve.shed.evaluations").get();
        assert!(!shedder.should_shed(), "cached decision, no evaluation");
        assert_eq!(anomex_obs::counter("serve.shed.evaluations").get(), before);
    }
}
