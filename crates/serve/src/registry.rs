//! The fitted-model registry: fit once per (dataset, detector, subspace),
//! serve concurrent readers forever.
//!
//! Detector work splits into an expensive, data-dependent **fit** (kNN
//! tables for LOF/FastABOD/kNN-distance, trained tree ensembles for
//! iForest — [`anomex_detectors::fit`]) and a cheap **score** read.
//! A service answering many requests against the same data must not pay
//! the fit per request; [`ModelRegistry`] keys fitted models by
//! `(dataset, detector, subspace)` and guarantees **exactly one** fit per
//! key no matter how many requests race on a cold entry — losers of the
//! race block until the winner publishes, then share the model through an
//! `Arc`.
//!
//! Each entry also freezes the **standardized score vector** of the fit
//! rows — `standardize_scores(model.score_fit_rows())`, the exact
//! arithmetic [`anomex_core::SubspaceScorer`] performs — so a
//! registry-served score is bit-identical to a direct
//! `ExplanationEngine`/detector call on the same key (the
//! `crosscheck` integration tests pin this down per detector).

use anomex_dataset::{Dataset, Subspace};
use anomex_detectors::zscore::standardize_scores;
use anomex_detectors::{fit_model, Detector, FittedModel};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a mutex, recovering the guard from a poisoned lock (fit panics
/// are handled by the slot state machine, not by mutex poisoning).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Registry key: one fitted model per (dataset, detector, subspace).
///
/// The detector component is stored in **canonical** form — every
/// hyper-parameter and seed spelled out (e.g. `"lof:k=15"`), since two
/// configurations of the same algorithm fit different models.
/// [`ModelKey::new`] canonicalizes recognizable detector specs itself,
/// so semantically-equal spellings (`"lof"`, `"LOF:k=15"`,
/// `"lof:k=15"`) alias to **one** fitted-model slot instead of fitting
/// the same model once per spelling.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// Registered dataset name.
    pub dataset: String,
    /// Canonical detector description (algorithm + hyper-parameters).
    pub detector: String,
    /// The subspace the model was fitted on.
    pub subspace: Subspace,
}

impl ModelKey {
    /// Builds a key from its three components. The detector string is
    /// canonicalized through the shared `anomex-spec` grammar when it
    /// parses as one of the paper detectors; unrecognized strings
    /// (fallback detectors, custom names) are kept verbatim.
    #[must_use]
    pub fn new(
        dataset: impl Into<String>,
        detector: impl Into<String>,
        subspace: Subspace,
    ) -> Self {
        let detector = detector.into();
        let detector = match anomex_spec::DetectorSpec::parse(&detector) {
            Ok(spec) => spec.canonical(),
            Err(_) => detector,
        };
        ModelKey {
            dataset: dataset.into(),
            detector,
            subspace,
        }
    }

    /// The 64-bit FNV-1a fingerprint of the key's canonical
    /// `dataset/detector/subspace` rendering — a compact stable id for
    /// logs and cache diagnostics.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let features: Vec<String> = self.subspace.iter().map(|f| f.to_string()).collect();
        let rendering = format!(
            "{}/{}/[{}]",
            self.dataset,
            self.detector,
            features.join(",")
        );
        anomex_spec::fnv1a64(rendering.as_bytes())
    }
}

/// A fitted model plus the frozen standardized scores of its fit rows.
pub struct FittedEntry {
    model: Box<dyn FittedModel>,
    scores: Arc<Vec<f64>>,
    fit_time: Duration,
}

impl FittedEntry {
    /// The frozen model.
    #[must_use]
    pub fn model(&self) -> &dyn FittedModel {
        self.model.as_ref()
    }

    /// Standardized scores of the fit rows — bit-identical to
    /// [`anomex_core::SubspaceScorer::scores`] for the same
    /// (dataset, detector, subspace).
    #[must_use]
    pub fn scores(&self) -> &Arc<Vec<f64>> {
        &self.scores
    }

    /// The standardized score of one fit row, or `None` when `point` is
    /// out of range — the request path's accessor.
    #[must_use]
    pub fn try_score_of(&self, point: usize) -> Option<f64> {
        self.scores.get(point).copied()
    }

    /// The standardized score of one fit row.
    ///
    /// # Panics
    /// Panics when `point` is out of range; request paths use
    /// [`FittedEntry::try_score_of`] instead.
    #[must_use]
    pub fn score_of(&self, point: usize) -> f64 {
        // anomex: allow(panic-path) documented panicking variant of try_score_of
        self.try_score_of(point).expect("point out of range")
    }

    /// Wall-clock time the fit took (projection + fit + standardization).
    #[must_use]
    pub fn fit_time(&self) -> Duration {
        self.fit_time
    }
}

/// A snapshot of the registry's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistryStats {
    /// Models fitted (cold misses; races on one key count once).
    pub fits: usize,
    /// Requests served by an already-fitted model.
    pub hits: usize,
    /// Entries evicted by the FIFO capacity bound.
    pub evictions: usize,
    /// Entries currently resident.
    pub entries: usize,
    /// Peak resident entries over the registry's lifetime.
    pub peak_entries: usize,
}

enum SlotState {
    /// No fit has started yet.
    Empty,
    /// Some thread is fitting; waiters sleep on the slot's condvar.
    Building,
    /// The fit completed; every reader shares the entry.
    Ready(Arc<FittedEntry>),
    /// The fit panicked; waiters propagate the failure.
    Poisoned,
}

struct Slot {
    state: Mutex<SlotState>,
    done: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            state: Mutex::new(SlotState::Empty),
            done: Condvar::new(),
        }
    }
}

struct RegistryMap {
    slots: HashMap<ModelKey, Arc<Slot>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<ModelKey>,
}

/// Why a fit could not produce a model: the underlying detector fit
/// panicked (degenerate data, invalid shape), either in this call or in
/// a previous one that poisoned the slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FitError {
    /// The key whose fit failed.
    pub key: ModelKey,
    /// The fit's panic message (or a note that an earlier fit poisoned
    /// the slot).
    pub message: String,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model fit failed for {}/{} on {:?}: {}",
            self.key.dataset, self.key.detector, self.key.subspace, self.message
        )
    }
}

impl std::error::Error for FitError {}

/// The keyed fitted-model registry — see the [module docs](self).
pub struct ModelRegistry {
    map: Mutex<RegistryMap>,
    /// FIFO bound on resident entries; `None` = unbounded.
    capacity: Option<usize>,
    fits: AtomicUsize,
    hits: AtomicUsize,
    evictions: AtomicUsize,
    peak_entries: AtomicUsize,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// An unbounded registry.
    #[must_use]
    pub fn new() -> Self {
        ModelRegistry {
            map: Mutex::new(RegistryMap {
                slots: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: None,
            fits: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            peak_entries: AtomicUsize::new(0),
        }
    }

    /// A registry evicting FIFO beyond `capacity` resident models
    /// (clamped to ≥ 1). Readers holding an evicted entry's `Arc` keep
    /// it alive; eviction only drops the registry's own reference.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let mut r = Self::new();
        r.capacity = Some(capacity.max(1));
        r
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        lock(&self.map).slots.len()
    }

    /// Whether the registry holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the registry's counters.
    #[must_use]
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            fits: self.fits.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            peak_entries: self.peak_entries.load(Ordering::Relaxed),
        }
    }

    /// Returns the fitted entry for `key`, fitting it **exactly once**
    /// on a cold key: concurrent callers racing on the same key elect
    /// one fitter, the rest block until the model is published.
    ///
    /// `dataset` and `detector` must be the objects `key` describes —
    /// the registry trusts the caller's naming (the service layer owns
    /// that mapping).
    ///
    /// # Panics
    /// Panics when the underlying fit panics (e.g. fewer than 2 rows for
    /// kNN-backed detectors), and on every concurrent waiter of that
    /// failed fit. Request paths use [`ModelRegistry::try_get_or_fit`],
    /// which reports the failure as a typed [`FitError`] instead.
    pub fn get_or_fit(
        &self,
        key: &ModelKey,
        dataset: &Dataset,
        detector: &dyn Detector,
    ) -> Arc<FittedEntry> {
        self.try_get_or_fit(key, dataset, detector)
            .unwrap_or_else(|e| panic!("{e}")) // anomex: allow(panic-path) documented panicking wrapper
    }

    /// Fallible variant of [`ModelRegistry::get_or_fit`]: a panicking
    /// fit is caught, the slot is poisoned so waiters fail fast, and the
    /// failure comes back as a typed [`FitError`] — one degenerate
    /// request must not take down a serving worker.
    ///
    /// # Errors
    /// When the fit panics, or when a previous fit poisoned this key.
    pub fn try_get_or_fit(
        &self,
        key: &ModelKey,
        dataset: &Dataset,
        detector: &dyn Detector,
    ) -> Result<Arc<FittedEntry>, FitError> {
        let slot = self.slot_for(key);
        {
            let mut st = lock(&slot.state);
            loop {
                match &*st {
                    SlotState::Ready(entry) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(Arc::clone(entry));
                    }
                    SlotState::Empty => {
                        *st = SlotState::Building;
                        break;
                    }
                    SlotState::Building => {
                        st = slot.done.wait(st).unwrap_or_else(PoisonError::into_inner);
                    }
                    SlotState::Poisoned => {
                        return Err(FitError {
                            key: key.clone(),
                            message: "a previous fit of this key panicked".to_string(),
                        });
                    }
                }
            }
        }
        // This thread won the build race; fit outside the lock, catching
        // unwinds so the slot state machine always reaches Ready or
        // Poisoned and waiters never sleep forever.
        let t0 = Instant::now();
        let fit = catch_unwind(AssertUnwindSafe(|| {
            let projected = dataset.project(&key.subspace);
            let model = fit_model(detector, &projected);
            let scores = Arc::new(standardize_scores(&model.score_fit_rows()));
            Arc::new(FittedEntry {
                model,
                scores,
                fit_time: t0.elapsed(),
            })
        }));
        match fit {
            Ok(entry) => {
                *lock(&slot.state) = SlotState::Ready(Arc::clone(&entry));
                slot.done.notify_all();
                self.fits.fetch_add(1, Ordering::Relaxed);
                Ok(entry)
            }
            Err(payload) => {
                *lock(&slot.state) = SlotState::Poisoned;
                slot.done.notify_all();
                Err(FitError {
                    key: key.clone(),
                    message: crate::batch::panic_message(payload.as_ref()),
                })
            }
        }
    }

    /// A snapshot of every **ready** entry fitted against `dataset` —
    /// the migration walk of the serve `append` operation. Slots still
    /// building (or poisoned) are skipped: their requesters hold a
    /// pre-append view and the entries are never consulted again once
    /// the dataset moves to its next append generation.
    #[must_use]
    pub fn ready_entries_for_dataset(&self, dataset: &str) -> Vec<(ModelKey, Arc<FittedEntry>)> {
        let m = lock(&self.map);
        let mut out = Vec::new();
        // Walk the insertion-order deque, not the hash map, so the
        // migration order is deterministic for tests and logs.
        for key in &m.order {
            if key.dataset != dataset {
                continue;
            }
            let Some(slot) = m.slots.get(key) else {
                continue;
            };
            if let SlotState::Ready(entry) = &*lock(&slot.state) {
                out.push((key.clone(), Arc::clone(entry)));
            }
        }
        out
    }

    /// Publishes an already-fitted model under `key` without running a
    /// fit — the append path's insert. The entry freezes
    /// `standardize_scores(model.score_fit_rows())` exactly as a cold
    /// fit would, so migrated models serve bit-identical scores to a
    /// from-scratch refit of the same data. Overwrites whatever state
    /// the slot held (a racing lazy fit of the same key produces an
    /// equivalent model, so last-writer-wins is safe). Not counted as a
    /// fit: no detector fit ran here.
    pub fn insert_ready(&self, key: &ModelKey, model: Box<dyn FittedModel>, fit_time: Duration) {
        let scores = Arc::new(standardize_scores(&model.score_fit_rows()));
        let entry = Arc::new(FittedEntry {
            model,
            scores,
            fit_time,
        });
        let slot = self.slot_for(key);
        *lock(&slot.state) = SlotState::Ready(entry);
        slot.done.notify_all();
    }

    /// Drops every slot keyed to `dataset`, returning how many were
    /// removed. Readers holding an entry's `Arc` keep it alive; in-flight
    /// fits publish into their (now orphaned) slot and finish normally.
    /// Used by the serve `append` operation to release the previous
    /// append generation's models.
    pub fn remove_dataset(&self, dataset: &str) -> usize {
        let mut m = lock(&self.map);
        let before = m.slots.len();
        m.slots.retain(|key, _| key.dataset != dataset);
        m.order.retain(|key| key.dataset != dataset);
        before - m.slots.len()
    }

    /// Looks up (or inserts) the slot of `key`, applying the FIFO
    /// capacity bound on insertion.
    fn slot_for(&self, key: &ModelKey) -> Arc<Slot> {
        let mut m = lock(&self.map);
        if let Some(slot) = m.slots.get(key) {
            return Arc::clone(slot);
        }
        let slot = Arc::new(Slot::new());
        m.slots.insert(key.clone(), Arc::clone(&slot));
        m.order.push_back(key.clone());
        if let Some(cap) = self.capacity {
            while m.slots.len() > cap {
                let Some(oldest) = m.order.pop_front() else {
                    break;
                };
                if oldest == *key {
                    // Never evict the key being inserted.
                    m.order.push_back(oldest);
                    break;
                }
                if m.slots.remove(&oldest).is_some() {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.peak_entries
            .fetch_max(m.slots.len(), Ordering::Relaxed);
        slot
    }
}

/// [`ModelRegistry`] sharded by [`ModelKey::fingerprint`] — the
/// registry-map mutex split `N` ways so concurrent requests for
/// *different* keys stop serializing on one lock.
///
/// This generalizes the `ScoreCache` sharding exemplar in
/// `anomex-core`: the shard count is clamped to `1..=256` and rounded up
/// to a power of two so routing is a mask (`fingerprint & (n - 1)`), not
/// a modulo. Because `ModelKey::new` canonicalizes detector spellings
/// *before* the fingerprint is taken, aliased spellings of one
/// configuration land on the same shard and keep the fit-exactly-once
/// guarantee — a key's slot state machine always lives in exactly one
/// shard.
///
/// Routing is pure key arithmetic, so two processes configured with the
/// same shard count place every key identically — which is what lets a
/// `replicate`d standby answer routing-sensitive diagnostics the same
/// way as its source.
pub struct ShardedModelRegistry {
    shards: Box<[ModelRegistry]>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u64,
}

impl Default for ShardedModelRegistry {
    fn default() -> Self {
        Self::new(8)
    }
}

impl ShardedModelRegistry {
    /// An unbounded registry split over `n_shards` (clamped to `1..=256`,
    /// rounded up to a power of two).
    #[must_use]
    pub fn new(n_shards: usize) -> Self {
        Self::build(n_shards, None)
    }

    /// A sharded registry bounding **total** resident models to
    /// `capacity`: each shard gets `(capacity / n_shards).max(1)` FIFO
    /// slots, so the realized bound rounds up to at least one model per
    /// shard.
    #[must_use]
    pub fn with_capacity(n_shards: usize, capacity: usize) -> Self {
        Self::build(n_shards, Some(capacity))
    }

    /// Wraps one existing registry as a single shard — the compatibility
    /// path for callers that built a [`ModelRegistry`] themselves.
    #[must_use]
    pub fn from_single(registry: ModelRegistry) -> Self {
        ShardedModelRegistry {
            shards: vec![registry].into_boxed_slice(),
            mask: 0,
        }
    }

    fn build(n_shards: usize, total_capacity: Option<usize>) -> Self {
        let n = n_shards.clamp(1, 256).next_power_of_two();
        let shards: Vec<ModelRegistry> = (0..n)
            .map(|_| match total_capacity {
                Some(cap) => ModelRegistry::with_capacity((cap / n).max(1)),
                None => ModelRegistry::new(),
            })
            .collect();
        ShardedModelRegistry {
            shards: shards.into_boxed_slice(),
            mask: (n - 1) as u64,
        }
    }

    /// How many shards the key space is split across (a power of two).
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to: `fingerprint & (n_shards - 1)`.
    #[must_use]
    pub fn shard_index(&self, key: &ModelKey) -> usize {
        (key.fingerprint() & self.mask) as usize
    }

    fn shard_for(&self, key: &ModelKey) -> &ModelRegistry {
        // anomex: allow(panic-path) shard_index masks by len-1 of a power-of-two length
        &self.shards[self.shard_index(key)]
    }

    /// Total resident entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(ModelRegistry::len).sum()
    }

    /// Whether every shard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(ModelRegistry::is_empty)
    }

    /// Counters aggregated over all shards. `peak_entries` is the sum of
    /// per-shard peaks — an upper bound on the true simultaneous peak,
    /// since shards need not have peaked at the same instant.
    #[must_use]
    pub fn stats(&self) -> RegistryStats {
        let mut total = RegistryStats::default();
        for shard in self.shards.iter() {
            let s = shard.stats();
            total.fits += s.fits;
            total.hits += s.hits;
            total.evictions += s.evictions;
            total.entries += s.entries;
            total.peak_entries += s.peak_entries;
        }
        total
    }

    /// Per-shard entry counts, shard order — the balance diagnostic the
    /// `stats` op reports.
    #[must_use]
    pub fn shard_entries(&self) -> Vec<usize> {
        self.shards.iter().map(ModelRegistry::len).collect()
    }

    /// See [`ModelRegistry::get_or_fit`]; routed to `key`'s shard.
    ///
    /// # Panics
    /// Panics when the underlying fit panics — request paths use
    /// [`ShardedModelRegistry::try_get_or_fit`].
    pub fn get_or_fit(
        &self,
        key: &ModelKey,
        dataset: &Dataset,
        detector: &dyn Detector,
    ) -> Arc<FittedEntry> {
        self.shard_for(key).get_or_fit(key, dataset, detector)
    }

    /// See [`ModelRegistry::try_get_or_fit`]; routed to `key`'s shard.
    ///
    /// # Errors
    /// When the fit panics, or when a previous fit poisoned this key.
    pub fn try_get_or_fit(
        &self,
        key: &ModelKey,
        dataset: &Dataset,
        detector: &dyn Detector,
    ) -> Result<Arc<FittedEntry>, FitError> {
        self.shard_for(key).try_get_or_fit(key, dataset, detector)
    }

    /// See [`ModelRegistry::ready_entries_for_dataset`]; concatenated in
    /// shard order (then insertion order within a shard) so the walk
    /// stays deterministic for a fixed shard count.
    #[must_use]
    pub fn ready_entries_for_dataset(&self, dataset: &str) -> Vec<(ModelKey, Arc<FittedEntry>)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            out.extend(shard.ready_entries_for_dataset(dataset));
        }
        out
    }

    /// See [`ModelRegistry::insert_ready`]; routed to `key`'s shard.
    pub fn insert_ready(&self, key: &ModelKey, model: Box<dyn FittedModel>, fit_time: Duration) {
        self.shard_for(key).insert_ready(key, model, fit_time);
    }

    /// See [`ModelRegistry::remove_dataset`]; applied to every shard,
    /// returning the total removed.
    pub fn remove_dataset(&self, dataset: &str) -> usize {
        self.shards.iter().map(|s| s.remove_dataset(dataset)).sum()
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use anomex_detectors::Lof;

    fn toy() -> Dataset {
        let mut rows: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 5) as f64 * 0.01, (i / 5) as f64 * 0.01, i as f64])
            .collect();
        rows.push(vec![4.0, 4.0, 15.0]);
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn fits_once_then_serves_hits() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let reg = ModelRegistry::new();
        let key = ModelKey::new("toy", "lof:k=5", Subspace::new([0usize, 1]));
        let a = reg.get_or_fit(&key, &ds, &lof);
        let b = reg.get_or_fit(&key, &ds, &lof);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = reg.stats();
        assert_eq!(stats.fits, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn equivalent_detector_spellings_share_one_slot() {
        let ds = toy();
        let lof = Lof::new(15).unwrap();
        let reg = ModelRegistry::new();
        let sub = Subspace::new([0usize, 1]);
        // All four spellings are the same configuration — one fit total.
        let spellings = ["lof", "LOF", "lof:k=15", "LOF:K=15"];
        for spelling in spellings {
            let key = ModelKey::new("toy", spelling, sub.clone());
            assert_eq!(key.detector, "lof:k=15", "{spelling}");
            let _ = reg.get_or_fit(&key, &ds, &lof);
        }
        let stats = reg.stats();
        assert_eq!(stats.fits, 1, "aliased keys refit the same model");
        assert_eq!(stats.hits, 3);

        // Fingerprints separate keys exactly as equality does.
        let a = ModelKey::new("toy", "lof", sub.clone());
        let b = ModelKey::new("toy", "lof:k=15", sub.clone());
        let c = ModelKey::new("toy", "lof:k=5", sub);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());

        // Unrecognized detector strings pass through verbatim.
        let fallback = ModelKey::new("toy", "loda:p=10,s=7", Subspace::new([0usize]));
        assert_eq!(fallback.detector, "loda:p=10,s=7");
    }

    #[test]
    fn scores_match_direct_standardized_detector_run() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let reg = ModelRegistry::new();
        let sub = Subspace::new([0usize, 1]);
        let key = ModelKey::new("toy", "lof:k=5", sub.clone());
        let entry = reg.get_or_fit(&key, &ds, &lof);
        use anomex_detectors::Detector;
        let direct = standardize_scores(&lof.score_all(&ds.project(&sub)));
        assert_eq!(**entry.scores(), direct);
        assert_eq!(entry.score_of(30), direct[30]);
        assert_eq!(entry.model().name(), "LOF");
    }

    #[test]
    fn concurrent_cold_misses_fit_exactly_once() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let reg = ModelRegistry::new();
        let key = ModelKey::new("toy", "lof:k=5", Subspace::new([0usize, 1, 2]));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let _ = reg.get_or_fit(&key, &ds, &lof);
                });
            }
        });
        let stats = reg.stats();
        assert_eq!(stats.fits, 1, "duplicated fit under contention");
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn distinct_keys_fit_distinct_models() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let reg = ModelRegistry::new();
        for sub in [
            Subspace::new([0usize]),
            Subspace::new([1usize]),
            Subspace::new([0usize, 1]),
        ] {
            let key = ModelKey::new("toy", "lof:k=5", sub);
            let _ = reg.get_or_fit(&key, &ds, &lof);
        }
        assert_eq!(reg.stats().fits, 3);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let reg = ModelRegistry::with_capacity(2);
        let keys: Vec<ModelKey> = (0..3usize)
            .map(|f| ModelKey::new("toy", "lof:k=5", Subspace::new([f])))
            .collect();
        let first = reg.get_or_fit(&keys[0], &ds, &lof);
        let _ = reg.get_or_fit(&keys[1], &ds, &lof);
        let _ = reg.get_or_fit(&keys[2], &ds, &lof); // evicts keys[0]
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.stats().evictions, 1);
        // The evicted entry stays alive for holders of its Arc...
        assert_eq!(first.model().n_rows(), ds.n_rows());
        // ...and re-requesting it refits.
        let _ = reg.get_or_fit(&keys[0], &ds, &lof);
        assert_eq!(reg.stats().fits, 4);
    }

    #[test]
    fn panicking_fit_poisons_the_slot_with_a_typed_error() {
        let one = Dataset::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        let lof = Lof::new(5).unwrap();
        let reg = ModelRegistry::new();
        let key = ModelKey::new("one", "lof:k=5", Subspace::new([0usize, 1]));
        let Err(err) = reg.try_get_or_fit(&key, &one, &lof) else {
            panic!("a 1-row fit must fail");
        };
        assert_eq!(err.key, key);
        assert!(!err.message.is_empty());
        // Later callers see the poisoned slot without re-running the fit.
        let Err(again) = reg.try_get_or_fit(&key, &one, &lof) else {
            panic!("the poisoned slot must keep failing");
        };
        assert!(again.message.contains("previous"), "{}", again.message);
        assert_eq!(reg.stats().fits, 0, "failed fits are not counted");
    }

    #[test]
    fn append_support_snapshots_inserts_and_removes() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let reg = ModelRegistry::new();
        let sub = Subspace::new([0usize, 1]);
        let key = ModelKey::new("toy", "lof:k=5", sub.clone());
        let entry = reg.get_or_fit(&key, &ds, &lof);

        let ready = reg.ready_entries_for_dataset("toy");
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].0, key);
        assert!(Arc::ptr_eq(&ready[0].1, &entry));
        assert!(reg.ready_entries_for_dataset("other").is_empty());

        // Republishing under the next epoch runs no fit, yet freezes the
        // same standardized scores a cold fit of that key would.
        let new_key = ModelKey::new("toy@e1", "lof:k=5", sub.clone());
        let model = fit_model(&lof, &ds.project(&sub));
        reg.insert_ready(&new_key, model, Duration::from_millis(1));
        let fetched = reg.get_or_fit(&new_key, &ds, &lof);
        let direct = standardize_scores(&lof.score_all(&ds.project(&sub)));
        assert_eq!(**fetched.scores(), direct);
        assert_eq!(reg.stats().fits, 1, "insert_ready is not a fit");

        assert_eq!(reg.remove_dataset("toy"), 1);
        assert_eq!(reg.len(), 1, "other datasets' slots survive");
        assert_eq!(reg.remove_dataset("toy"), 0);
        // The removed entry stays alive for existing Arc holders.
        assert_eq!(entry.model().n_rows(), ds.n_rows());
    }

    #[test]
    fn try_score_of_bounds_checks() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let reg = ModelRegistry::new();
        let key = ModelKey::new("toy", "lof:k=5", Subspace::new([0usize, 1]));
        let entry = reg.try_get_or_fit(&key, &ds, &lof).unwrap();
        assert!(entry.try_score_of(0).is_some());
        assert!(entry.try_score_of(ds.n_rows()).is_none());
    }

    #[test]
    fn fallback_detectors_freeze_scores_too() {
        use anomex_detectors::Loda;
        let ds = toy();
        let loda = Loda::builder().projections(10).seed(7).build().unwrap();
        let reg = ModelRegistry::new();
        let sub = Subspace::new([0usize, 1, 2]);
        let key = ModelKey::new("toy", "loda:p=10,s=7", sub.clone());
        let entry = reg.get_or_fit(&key, &ds, &loda);
        use anomex_detectors::Detector;
        let direct = standardize_scores(&loda.score_all(&ds.project(&sub)));
        assert_eq!(**entry.scores(), direct);
    }

    // ---- sharded registry ------------------------------------------------

    #[test]
    fn shard_count_is_clamped_to_a_power_of_two() {
        assert_eq!(ShardedModelRegistry::new(0).n_shards(), 1);
        assert_eq!(ShardedModelRegistry::new(1).n_shards(), 1);
        assert_eq!(ShardedModelRegistry::new(5).n_shards(), 8);
        assert_eq!(ShardedModelRegistry::new(8).n_shards(), 8);
        assert_eq!(ShardedModelRegistry::new(9_999).n_shards(), 256);
        assert_eq!(ShardedModelRegistry::default().n_shards(), 8);
    }

    #[test]
    fn every_key_routes_to_exactly_one_in_range_shard() {
        let reg = ShardedModelRegistry::new(8);
        for ds in ["a", "b", "toy", "cover"] {
            for det in ["lof:k=5", "lof:k=15", "iforest", "knn:k=10"] {
                for f in 0..6usize {
                    let key = ModelKey::new(ds, det, Subspace::new([f]));
                    let shard = reg.shard_index(&key);
                    assert!(shard < reg.n_shards());
                    // Routing is a pure function of the key: stable
                    // across calls and across registries of equal width.
                    assert_eq!(shard, reg.shard_index(&key.clone()));
                    assert_eq!(shard, ShardedModelRegistry::new(8).shard_index(&key));
                    assert_eq!(
                        shard,
                        (key.fingerprint() % 8) as usize,
                        "mask routing must equal modulo for power-of-two widths"
                    );
                }
            }
        }
    }

    #[test]
    fn aliased_detector_spellings_land_on_the_same_shard_and_slot() {
        let ds = toy();
        let lof = Lof::new(15).unwrap();
        let reg = ShardedModelRegistry::new(16);
        let sub = Subspace::new([0usize, 1]);
        let spellings = ["lof", "LOF", "lof:k=15", "LOF:K=15"];
        let shards: Vec<usize> = spellings
            .iter()
            .map(|s| reg.shard_index(&ModelKey::new("toy", *s, sub.clone())))
            .collect();
        assert!(
            shards.windows(2).all(|w| w[0] == w[1]),
            "aliases diverged across shards: {shards:?}"
        );
        for spelling in spellings {
            let key = ModelKey::new("toy", spelling, sub.clone());
            let _ = reg.get_or_fit(&key, &ds, &lof);
        }
        let stats = reg.stats();
        assert_eq!(stats.fits, 1, "aliases must share one fitted slot");
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn sharded_registry_behaves_like_one_registry() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let reg = ShardedModelRegistry::new(4);
        let keys: Vec<ModelKey> = (0..3usize)
            .map(|f| ModelKey::new("toy", "lof:k=5", Subspace::new([f])))
            .collect();
        for key in &keys {
            let _ = reg.get_or_fit(key, &ds, &lof);
            let _ = reg.get_or_fit(key, &ds, &lof);
        }
        let stats = reg.stats();
        assert_eq!(stats.fits, 3);
        assert_eq!(stats.hits, 3);
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
        assert_eq!(
            reg.shard_entries().iter().sum::<usize>(),
            3,
            "per-shard entries must sum to the total"
        );

        // Scores served through a shard are the same frozen vectors a
        // flat registry produces.
        let flat = ModelRegistry::new();
        for key in &keys {
            let sharded = reg.get_or_fit(key, &ds, &lof);
            let direct = flat.get_or_fit(key, &ds, &lof);
            assert_eq!(**sharded.scores(), **direct.scores());
        }

        // Dataset-wide operations span every shard.
        assert_eq!(reg.ready_entries_for_dataset("toy").len(), 3);
        assert_eq!(reg.remove_dataset("toy"), 3);
        assert!(reg.is_empty());
    }

    #[test]
    fn concurrent_cold_misses_stay_exactly_once_across_shards() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let reg = ShardedModelRegistry::new(8);
        let keys: Vec<ModelKey> = [
            Subspace::new([0usize]),
            Subspace::new([1usize]),
            Subspace::new([2usize]),
            Subspace::new([0usize, 1]),
        ]
        .into_iter()
        .map(|sub| ModelKey::new("toy", "lof:k=5", sub))
        .collect();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                for key in &keys {
                    scope.spawn(|| {
                        let _ = reg.get_or_fit(key, &ds, &lof);
                    });
                }
            }
        });
        let stats = reg.stats();
        assert_eq!(stats.fits, keys.len(), "one fit per distinct key");
        assert_eq!(stats.hits, keys.len() * 7);
    }

    #[test]
    fn from_single_preserves_flat_capacity_semantics() {
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        let reg = ShardedModelRegistry::from_single(ModelRegistry::with_capacity(2));
        assert_eq!(reg.n_shards(), 1);
        for f in 0..3usize {
            let key = ModelKey::new("toy", "lof:k=5", Subspace::new([f]));
            let _ = reg.get_or_fit(&key, &ds, &lof);
        }
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.stats().evictions, 1);
    }

    #[test]
    fn sharded_capacity_splits_across_shards() {
        let reg = ShardedModelRegistry::with_capacity(4, 16);
        assert_eq!(reg.n_shards(), 4);
        // Each shard holds at most 4; inserting many distinct keys can
        // never push the total past 16.
        let ds = toy();
        let lof = Lof::new(5).unwrap();
        for f in 0..3usize {
            for g in 0..3usize {
                let key = ModelKey::new(format!("d{f}"), "lof:k=5", Subspace::new([g]));
                let _ = reg.get_or_fit(&key, &ds, &lof);
            }
        }
        assert!(reg.len() <= 16);
        assert_eq!(reg.stats().fits, 9);
    }
}
