//! # anomex-serve
//!
//! The serving layer: a fitted-model registry plus a micro-batching
//! explanation service over the anomex framework.
//!
//! The paper's pipelines are batch experiments — fit, explain, write a
//! figure. Serving inverts the shape: requests arrive one at a time,
//! concurrently, against long-lived data. This crate adds the three
//! pieces that inversion needs, all on `std` and the existing workspace
//! crates (no new external dependencies):
//!
//! * [`registry::ModelRegistry`] — fits each (dataset, detector,
//!   subspace) model **exactly once** (racing requests elect one
//!   fitter) and serves concurrent readers through `Arc`s, built on the
//!   explicit fit/score lifecycle of [`anomex_detectors::fit`];
//! * [`batch::Batcher`] — a bounded request queue with backpressure
//!   ([`batch::ServeError::Rejected`]), a deadline-or-capacity batch
//!   cut, per-request deadlines ([`batch::ServeError::TimedOut`]) and a
//!   worker pool fanning batches out through `anomex-parallel`;
//! * [`service::ExplanationService`] / [`service::ServeHandle`] — the
//!   request executor speaking the JSON-lines [`protocol`], serving
//!   detector scores and Beam/LookOut/RefOut/HiCS explanations that are
//!   **bit-identical** to direct [`anomex_core::ExplanationEngine`]
//!   calls, with per-stage timing folded into
//!   [`anomex_core::RunStats`].
//!
//! Detector and explainer wire strings are parsed by the canonical
//! [`anomex_spec`] layer, so `explain`/`summarize` requests may carry an
//! inline `pipeline` spec (compact `"beam+lof:k=5"` or a
//! `PipelineSpec` JSON object) instead of the separate fields, and the
//! `profile`/`recommend` operations expose the profile-driven pipeline
//! recommender over any registered dataset. Legacy spec strings remain
//! wire-compatible byte for byte.
//!
//! The `append` operation extends a registered dataset in place: the
//! dataset moves to its next *append epoch* (registry and cache keys
//! embed the epoch, so pre-append models are never consulted again) and
//! fitted models whose detector supports incremental extension
//! ([`anomex_detectors::FittedModel::append_rows`]) migrate
//! forward without a refit — for the exact neighbor backend the
//! migrated model serves scores **bit-identical** to a from-scratch
//! refit on the extended data.
//!
//! Three production-shape pieces sit on top:
//!
//! * [`front::ReactorServer`] — a non-blocking `anomex-reactor` event
//!   loop replacing the thread-per-connection TCP edge: one poll-loop
//!   thread multiplexes every client, per-connection FIFOs preserve
//!   pipelined response order, and work concurrency stays in the
//!   batcher's pool so responses remain bit-identical;
//! * [`registry::ShardedModelRegistry`] — the registry key space split
//!   by [`registry::ModelKey::fingerprint`] across power-of-two shards,
//!   so requests for different keys stop serializing on one map lock;
//! * [`shed::LoadShedder`] — obs-metrics-driven admission control:
//!   when a configured quantile of the queue-wait histogram exceeds the
//!   SLO, [`service::ServeHandle::submit`] rejects with the typed
//!   [`batch::ServeError::Shed`] (`overloaded` on the wire) before the
//!   request can queue. The `replicate` operation lets a fresh process
//!   pull a peer's datasets and warm-fit its model keys, so several
//!   processes can serve one model set.
//!
//! The `anomex_serve` binary wraps a [`service::ServeHandle`] in a
//! stdin/stdout loop (`--stdin`) or a TCP listener (`--listen ADDR`,
//! reactor event loop by default, `--threaded` for the legacy
//! thread-per-connection edge).
//!
//! ```
//! use anomex_serve::protocol::{Request, RequestBody};
//! use anomex_serve::service::{ExplanationService, ServeHandle};
//! use anomex_serve::batch::BatchConfig;
//! use anomex_dataset::Dataset;
//! use std::sync::Arc;
//!
//! let service = Arc::new(ExplanationService::new());
//! let mut rows: Vec<Vec<f64>> = (0..12)
//!     .map(|i| vec![(i % 4) as f64 * 0.01, (i / 4) as f64 * 0.01])
//!     .collect();
//! rows.push(vec![5.0, 5.0]);
//! service
//!     .register_dataset("toy", Dataset::from_rows(rows).unwrap())
//!     .unwrap();
//! let handle = ServeHandle::start(service, BatchConfig::default(), None);
//! let resp = handle.roundtrip(Request {
//!     id: 1,
//!     body: RequestBody::Score {
//!         dataset: "toy".into(),
//!         detector: "lof:k=3".into(),
//!         subspace: None,
//!         point: 12,
//!     },
//! });
//! assert!(resp.ok);
//! assert!(resp.score.unwrap() > 0.0, "planted outlier scores high");
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod batch;
pub mod front;
pub mod protocol;
pub mod registry;
pub mod service;
pub mod shed;

pub use batch::{BatchConfig, BatchContext, BatchStats, Batcher, ServeError, Ticket};
pub use front::{ReactorServer, ServeLineHandler};
pub use protocol::{
    DatasetInfo, RankedEntry, ReplicationManifest, ReplicationReport, Request, RequestBody,
    Response, ServeTiming,
};
pub use registry::{FittedEntry, ModelKey, ModelRegistry, RegistryStats, ShardedModelRegistry};
pub use service::{ExplanationService, ServeHandle, Submitted};
pub use shed::{LoadShedder, SloConfig};
