//! The event-loop front end: `anomex-reactor` wired to a [`ServeHandle`].
//!
//! The thread-per-connection path in the serve binary spends one OS
//! thread per client doing nothing but blocking on `read(2)`. This
//! module replaces that edge with a single poll-loop thread: the
//! [`ServeLineHandler`] parses and submits each framed line on the
//! reactor thread (both non-blocking — parse failures and shed/
//! backpressure rejections answer immediately), and queued work is
//! redeemed through a non-blocking [`Completion`] wrapping the batcher
//! ticket. Work concurrency stays where it was — the batcher's worker
//! pool — so responses remain bit-identical to direct
//! `ExplanationService` calls; only the I/O multiplexing strategy
//! changes.
//!
//! Response *order* per connection is preserved by the reactor's
//! pending FIFO even when batches complete out of submission order,
//! which is what lets pipelining clients correlate responses without
//! ids (they still get ids).

use crate::batch::{ServeError, Ticket};
use crate::protocol::{ErrorCode, Response};
use crate::service::{ServeHandle, Submitted};
use anomex_reactor::{Completion, LineHandler, Reactor, ReactorConfig, ReactorStats, Submission};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Serializes one response line. Serialization of our own `Response`
/// cannot realistically fail, but if it ever does the client still gets
/// a well-formed typed error instead of a dropped line.
#[must_use]
pub fn response_line(resp: &Response) -> String {
    serde_json::to_string(resp).unwrap_or_else(|e| {
        let msg = format!("response serialization failed: {e}").replace('"', "'");
        format!(
            "{{\"id\":{},\"ok\":false,\"code\":\"internal\",\"error\":\"{msg}\"}}",
            resp.id
        )
    })
}

/// The typed line sent before closing a connection whose request line
/// exceeded the reactor's `max_line`.
#[must_use]
pub fn overflow_response() -> String {
    response_line(&Response::failure_coded(
        0,
        ErrorCode::BadRequest,
        "request line exceeds the maximum length",
    ))
}

/// A batcher ticket plus everything needed to render its response; the
/// reactor polls it once per tick while it heads its connection's FIFO.
struct TicketCompletion {
    id: u64,
    ticket: Ticket<Response>,
    /// Mirror of the `Ticket::wait` deadline: the batch cut only fails
    /// expired jobs when it reaches them, so the waiter side enforces
    /// promptness — here, the reactor.
    deadline: Option<Instant>,
}

impl Completion for TicketCompletion {
    fn try_take(&mut self) -> Option<String> {
        if let Some(result) = self.ticket.try_take() {
            let resp = result.unwrap_or_else(|e| e.to_response(self.id));
            return Some(response_line(&resp));
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                // Give up exactly like a blocking `Ticket::wait` would;
                // if the worker fills the ticket later, it drops unseen.
                return Some(response_line(&Response::failure_coded(
                    self.id,
                    ErrorCode::TimedOut,
                    ServeError::TimedOut.to_string(),
                )));
            }
        }
        None
    }
}

/// [`LineHandler`] over a [`ServeHandle`]: parse, admit (or shed),
/// submit — all non-blocking, as the reactor contract requires.
pub struct ServeLineHandler {
    handle: Arc<ServeHandle>,
}

impl ServeLineHandler {
    /// Wraps a running handle.
    #[must_use]
    pub fn new(handle: Arc<ServeHandle>) -> Self {
        ServeLineHandler { handle }
    }
}

impl LineHandler for ServeLineHandler {
    fn handle_line(&self, line: &str) -> Submission {
        match self.handle.submit_line(line) {
            None => Submission::Skip,
            Some(Submitted::Immediate(resp)) => Submission::Done(response_line(&resp)),
            Some(Submitted::Queued(id, ticket)) => {
                Submission::Pending(Box::new(TicketCompletion {
                    id,
                    ticket,
                    deadline: self.handle.default_deadline().map(|d| Instant::now() + d),
                }))
            }
        }
    }
}

/// A reactor front end running on its own thread — the serve binary's
/// `--listen` edge, and the in-process server the crosscheck tests spin
/// up against real sockets.
pub struct ReactorServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: JoinHandle<io::Result<ReactorStats>>,
}

impl ReactorServer {
    /// Binds `addr` (port 0 picks a free port) and starts the loop on a
    /// dedicated thread. When `config.overflow_response` is unset, the
    /// protocol's typed [`overflow_response`] is installed.
    ///
    /// # Errors
    /// When binding the listener fails.
    pub fn start(
        handle: Arc<ServeHandle>,
        addr: impl ToSocketAddrs,
        mut config: ReactorConfig,
    ) -> io::Result<Self> {
        if config.overflow_response.is_none() {
            config.overflow_response = Some(overflow_response());
        }
        let reactor = Reactor::bind(addr, ServeLineHandler::new(handle), config)?;
        let addr = reactor.local_addr()?;
        let stop = reactor.stop_handle();
        let join = std::thread::spawn(move || reactor.run());
        Ok(ReactorServer { addr, stop, join })
    }

    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Raises the stop flag and joins the loop, returning its counters.
    ///
    /// # Errors
    /// When the loop exited with an I/O error or panicked.
    pub fn stop(self) -> io::Result<ReactorStats> {
        self.stop.store(true, Ordering::Relaxed);
        self.join
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("reactor thread panicked")))
    }

    /// Blocks until the loop exits (it never does unless the stop flag
    /// is raised elsewhere or the loop errors) — the serve binary's
    /// foreground path.
    ///
    /// # Errors
    /// When the loop exited with an I/O error or panicked.
    pub fn join(self) -> io::Result<ReactorStats> {
        self.join
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("reactor thread panicked")))
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn response_lines_are_single_line_json() {
        let line = response_line(&Response::success(42));
        assert_eq!(line, r#"{"id":42,"ok":true}"#);
        assert!(!line.contains('\n'));
    }

    #[test]
    fn overflow_response_is_typed() {
        let resp: Response = serde_json::from_str(&overflow_response()).unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.code, Some(ErrorCode::BadRequest));
    }
}
