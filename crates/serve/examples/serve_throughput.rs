//! Serve-throughput measurement feeding `BENCH_serve.json`.
//!
//! Compares the two TCP edges over the *real* serving stack — the
//! `anomex-reactor` event loop vs a thread-per-connection accept loop,
//! both in front of the same `ServeHandle` — under 64 pipelining
//! clients with connection churn, then induces a queue-wait SLO
//! violation to show typed `overloaded` shedding, and times warm
//! registry lookups single-lock vs 8-way sharded.
//!
//! Latency quantiles come from anomex-obs log2 histograms
//! (`quantile_upper_bound`: bucket top edges, one-sided ≤2x error), so
//! the snapshot measures exactly what the serving SLO machinery sees.
//! Run via `scripts/bench_snapshot.sh`, which stamps the date and
//! applies the >10% regression gate:
//!
//! ```sh
//! cargo run --release -p anomex-serve --example serve_throughput
//! ```

use anomex_dataset::{Dataset, Subspace};
use anomex_detectors::Lof;
use anomex_reactor::ReactorConfig;
use anomex_serve::batch::BatchConfig;
use anomex_serve::front::ReactorServer;
use anomex_serve::protocol::{ErrorCode, Request, RequestBody, Response};
use anomex_serve::registry::{ModelKey, ModelRegistry, ShardedModelRegistry};
use anomex_serve::service::{ExplanationService, ServeHandle};
use anomex_serve::shed::SloConfig;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 64;
const ROUNDS: usize = 4;
const DEPTH: usize = 8;

fn leak(name: String) -> &'static str {
    Box::leak(name.into_boxed_str())
}

/// A deterministic dataset: `n` rows on a noisy diagonal in 4 features.
fn bench_dataset(n: usize) -> Dataset {
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut unit = move || {
        // xorshift*: deterministic, dependency-free.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
    };
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let t = unit();
            vec![t + 0.02 * unit(), t + 0.02 * unit(), unit(), unit()]
        })
        .collect();
    Dataset::from_rows(rows).unwrap()
}

fn score_line(id: u64) -> String {
    serde_json::to_string(&Request {
        id,
        body: RequestBody::Score {
            dataset: "bench".into(),
            detector: "lof:k=10".into(),
            subspace: Some(vec![0, 1]),
            point: 0,
        },
    })
    .unwrap()
}

/// The legacy edge: accept loop, one thread per connection, one
/// blocking submit-resolve per line — the serve binary's `--threaded`
/// shape, reproduced here so both edges share one `ServeHandle`.
fn start_threaded(handle: Arc<ServeHandle>) -> (SocketAddr, Arc<AtomicBool>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop2.load(Ordering::Relaxed) {
                return;
            }
            let Ok(stream) = conn else { continue };
            let handle = Arc::clone(&handle);
            std::thread::spawn(move || {
                let reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    let Some(submitted) = handle.submit_line(&line) else {
                        continue;
                    };
                    let resp = submitted.resolve();
                    let text = serde_json::to_string(&resp).unwrap();
                    if writeln!(writer, "{text}").is_err() {
                        break;
                    }
                }
            });
        }
    });
    (addr, stop)
}

/// Drives the full client load: `CLIENTS` threads, each `rounds` fresh
/// connections (churn included) pipelining `depth` requests.
/// Client-observed write-to-response latency goes into `latency` so
/// both edges are judged by what callers experience. Returns
/// (wall, ok, overloaded).
fn drive(
    addr: SocketAddr,
    clients: usize,
    rounds: usize,
    depth: usize,
    lines: &(dyn Fn(u64) -> String + Sync),
    latency: &'static anomex_obs::Histogram,
) -> (Duration, u64, u64) {
    let started = Instant::now();
    let ok = AtomicU64::new(0);
    let overloaded = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for c in 0..clients {
            let ok = &ok;
            let overloaded = &overloaded;
            scope.spawn(move || {
                for r in 0..rounds {
                    let stream = TcpStream::connect(addr).unwrap();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(60)))
                        .unwrap();
                    let mut writer = stream.try_clone().unwrap();
                    let mut payload = String::new();
                    for d in 0..depth {
                        payload.push_str(&lines(((c * rounds + r) * depth + d) as u64));
                        payload.push('\n');
                    }
                    let sent = Instant::now();
                    writer.write_all(payload.as_bytes()).unwrap();
                    let mut reader = BufReader::new(stream);
                    for _ in 0..depth {
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        latency.observe(sent.elapsed().as_micros() as u64);
                        let resp: Response = serde_json::from_str(line.trim()).unwrap();
                        if resp.code == Some(ErrorCode::Overloaded) {
                            overloaded.fetch_add(1, Ordering::Relaxed);
                        } else {
                            assert!(resp.ok, "{:?}", resp.error);
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    (
        started.elapsed(),
        ok.load(Ordering::Relaxed),
        overloaded.load(Ordering::Relaxed),
    )
}

fn warm_handle() -> Arc<ServeHandle> {
    let svc = Arc::new(ExplanationService::new());
    svc.register_dataset("bench", bench_dataset(2_000)).unwrap();
    let handle = Arc::new(ServeHandle::start(svc, BatchConfig::default(), None));
    // Warm the one model the load reads, so the runs measure serving,
    // not fitting.
    let warm = handle
        .submit_line(&score_line(0))
        .expect("non-blank")
        .resolve();
    assert!(warm.ok, "{:?}", warm.error);
    handle
}

fn q_ms(h: &anomex_obs::Histogram, q: f64) -> f64 {
    h.snapshot().quantile_upper_bound(q) as f64 / 1000.0
}

fn main() {
    let total = (CLIENTS * ROUNDS * DEPTH) as u64;
    let mut edges = Vec::new();
    for edge in ["reactor", "threaded"] {
        let mut best: Option<(f64, f64, f64)> = None;
        for pass in 0..3 {
            let handle = warm_handle();
            let observed = anomex_obs::histogram(leak(format!("{edge}{pass}.client_micros")));
            let (wall, ok) = if edge == "reactor" {
                let server = ReactorServer::start(
                    Arc::clone(&handle),
                    "127.0.0.1:0",
                    ReactorConfig::default(),
                )
                .expect("bind reactor");
                let (wall, ok, _) =
                    drive(server.addr(), CLIENTS, ROUNDS, DEPTH, &score_line, observed);
                server.stop().expect("clean reactor shutdown");
                (wall, ok)
            } else {
                let (addr, stop) = start_threaded(Arc::clone(&handle));
                let (wall, ok, _) = drive(addr, CLIENTS, ROUNDS, DEPTH, &score_line, observed);
                stop.store(true, Ordering::Relaxed);
                let _ = TcpStream::connect(addr); // unblock the acceptor
                (wall, ok)
            };
            assert_eq!(ok, total, "{edge}: lost responses");
            if pass == 0 {
                continue; // warmup pass
            }
            let wall_ms = wall.as_secs_f64() * 1000.0;
            let p50 = q_ms(observed, 0.50);
            let p99 = q_ms(observed, 0.99);
            if best.map_or(true, |(w, _, _)| wall_ms < w) {
                best = Some((wall_ms, p50, p99));
            }
        }
        let (wall_ms, p50, p99) = best.unwrap();
        edges.push((edge, wall_ms, p50, p99, total as f64 / (wall_ms / 1000.0)));
    }

    // Overload: one worker, cold models per request (every line names a
    // distinct k, forcing a fresh fit), SLO far below the induced wait.
    let svc = Arc::new(ExplanationService::new());
    svc.register_dataset("bench", bench_dataset(1_000)).unwrap();
    let slo = SloConfig {
        queue_wait_limit_micros: 1_000,
        quantile: 0.5,
        min_observations: 16,
        eval_interval: Duration::from_millis(50),
    };
    let handle = Arc::new(ServeHandle::start_with_slo(
        svc,
        BatchConfig {
            workers: 1,
            queue_capacity: 4_096,
            ..BatchConfig::default()
        },
        None,
        Some(slo),
    ));
    let server = ReactorServer::start(Arc::clone(&handle), "127.0.0.1:0", ReactorConfig::default())
        .expect("bind reactor");
    let qw_baseline = anomex_obs::histogram("serve.batch.queue_wait_micros").snapshot();
    let cold_line = |id: u64| {
        serde_json::to_string(&Request {
            id,
            body: RequestBody::Score {
                dataset: "bench".into(),
                detector: format!("lof:k={}", 5 + id % 400),
                subspace: Some(vec![0, 1]),
                point: 0,
            },
        })
        .unwrap()
    };
    let overload_lat = anomex_obs::histogram("overload.client_micros");
    let (wall, ok, overloaded) = drive(server.addr(), 16, 4, 8, &cold_line, overload_lat);
    server.stop().expect("clean reactor shutdown");
    let qw_window = anomex_obs::histogram("serve.batch.queue_wait_micros")
        .snapshot()
        .since(&qw_baseline);

    // Warm registry lookups: single-lock vs 8-way sharded, 8 threads.
    let ds = bench_dataset(200);
    let det = Lof::new(10).unwrap();
    let keys: Vec<ModelKey> = (0..64)
        .map(|i| {
            ModelKey::new(
                "bench",
                format!("lof:k={}", 5 + i),
                Subspace::new([0usize, 1]),
            )
        })
        .collect();
    let single = ModelRegistry::new();
    let sharded = ShardedModelRegistry::new(8);
    for key in &keys {
        single.get_or_fit(key, &ds, &det);
        sharded.get_or_fit(key, &ds, &det);
    }
    let lookups = 200_000usize;
    let bench_lookups = |sharded_path: bool| -> f64 {
        let started = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let keys = &keys;
                let single = &single;
                let sharded = &sharded;
                let ds = &ds;
                let det = &det;
                scope.spawn(move || {
                    for i in 0..lookups {
                        let key = &keys[(t + i).wrapping_mul(31) % keys.len()];
                        let entry = if sharded_path {
                            sharded.get_or_fit(key, ds, det)
                        } else {
                            single.get_or_fit(key, ds, det)
                        };
                        std::hint::black_box(entry);
                    }
                });
            }
        });
        started.elapsed().as_secs_f64() * 1000.0
    };
    bench_lookups(false); // warmup
    let single_ms = bench_lookups(false);
    let sharded_ms = bench_lookups(true);

    // ---- JSON snapshot (date stamped by bench_snapshot.sh) ----------
    println!("{{");
    println!(
        "  \"bench\": \"serve_throughput (reactor vs thread-per-connection edge, SLO shed, registry sharding)\","
    );
    println!("  \"source\": \"cargo run --release -p anomex-serve --example serve_throughput\",");
    println!(
        "  \"estimator\": \"best of 2 measured passes after 1 warmup; latency quantiles are log2-bucket upper bounds from anomex-obs histograms (one-sided, at most 2x high)\","
    );
    println!(
        "  \"workload\": {{ \"clients\": {CLIENTS}, \"rounds_per_client\": {ROUNDS}, \"pipeline_depth\": {DEPTH}, \"requests\": {total}, \"pool_workers\": 2, \"note\": \"fresh connection per round; one warm lof:k=10 model; latency is client-observed write-to-response\" }},"
    );
    println!("  \"timings_ms\": [");
    let mut first = true;
    for (edge, wall_ms, p50, p99) in edges.iter().map(|(e, w, p50, p99, _)| (e, w, p50, p99)) {
        for (metric, ms) in [
            ("wall", wall_ms),
            ("p50_latency", p50),
            ("p99_latency", p99),
        ] {
            if !first {
                println!(",");
            }
            first = false;
            print!("    {{ \"edge\": \"{edge}\", \"metric\": \"{metric}\", \"ms\": {ms:.3} }}");
        }
    }
    println!("\n  ],");
    println!("  \"throughput_req_per_s\": [");
    println!(
        "    {{ \"edge\": \"{}\", \"rps\": {:.0} }},",
        edges[0].0, edges[0].4
    );
    println!(
        "    {{ \"edge\": \"{}\", \"rps\": {:.0} }}",
        edges[1].0, edges[1].4
    );
    println!("  ],");
    println!(
        "  \"speedups\": [ {{ \"reactor_vs_threaded_rps\": {:.2} }} ],",
        edges[0].4 / edges[1].4
    );
    println!(
        "  \"overload\": {{ \"slo\": {{ \"queue_wait_limit_ms\": 1, \"quantile\": 0.5, \"min_observations\": 16, \"eval_interval_ms\": 50 }}, \"workload\": {{ \"clients\": 16, \"rounds_per_client\": 4, \"pipeline_depth\": 8, \"pool_workers\": 1 }}, \"requests\": {}, \"served_ok\": {ok}, \"shed_typed_overloaded\": {overloaded}, \"wall_ms\": {:.1}, \"queue_wait_p99_ms\": {:.3} }},",
        16 * 4 * 8,
        wall.as_secs_f64() * 1000.0,
        qw_window.quantile_upper_bound(0.99) as f64 / 1000.0,
    );
    println!(
        "  \"registry_sharding\": {{ \"threads\": 8, \"lookups_per_thread\": {lookups}, \"keys\": {}, \"single_lock_ms\": {single_ms:.1}, \"sharded8_ms\": {sharded_ms:.1}, \"speedup\": {:.2} }}",
        keys.len(),
        single_ms / sharded_ms
    );
    println!("}}");
    assert!(
        overloaded > 0,
        "overload run never shed — SLO machinery is not engaging"
    );
}
