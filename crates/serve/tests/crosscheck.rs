//! Serving must not change a single bit of any result.
//!
//! The acceptance bar for the serving layer: a registry-served score and
//! a service-served explanation are **bit-identical** to calling the
//! detector / `ExplanationEngine` directly — verified here over all
//! three paper detectors — and the service survives ≥ 8 concurrent
//! clients with the queue bound enforced.

use anomex_core::{Beam, LookOut};
use anomex_core::{ExplainerKind, ExplanationEngine, RunSpec, SubspaceScorer};
use anomex_dataset::{Dataset, Subspace};
use anomex_detectors::zscore::standardize_scores;
use anomex_detectors::{Detector, FastAbod, IsolationForest, Lof};
use anomex_serve::batch::BatchConfig;
use anomex_serve::protocol::{Request, RequestBody};
use anomex_serve::registry::{ModelKey, ModelRegistry};
use anomex_serve::service::{ExplanationService, ServeHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// A 4-feature dataset with one outlier planted in features {0, 1}.
fn planted() -> Dataset {
    let mut rng = StdRng::seed_from_u64(21);
    let mut rows: Vec<Vec<f64>> = (0..80)
        .map(|_| {
            let t: f64 = rng.gen_range(0.1..0.9);
            vec![
                t + rng.gen_range(-0.02..0.02),
                t + rng.gen_range(-0.02..0.02),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
            ]
        })
        .collect();
    rows.push(vec![0.2, 0.8, 0.5, 0.5]);
    Dataset::from_rows(rows).unwrap()
}

fn paper_detectors() -> Vec<(&'static str, Box<dyn Detector>)> {
    vec![
        (
            "lof:k=10",
            Box::new(Lof::new(10).unwrap()) as Box<dyn Detector>,
        ),
        ("abod:k=8", Box::new(FastAbod::new(8).unwrap())),
        (
            "iforest:trees=25,psi=64,reps=2,seed=5",
            Box::new(
                IsolationForest::builder()
                    .trees(25)
                    .subsample(64)
                    .repetitions(2)
                    .seed(5)
                    .build()
                    .unwrap(),
            ),
        ),
    ]
}

#[test]
fn registry_scores_are_bit_identical_to_the_scorer_for_all_detectors() {
    let ds = planted();
    let reg = ModelRegistry::new();
    for (canon, det) in paper_detectors() {
        for sub in [
            Subspace::new([0usize, 1]),
            Subspace::new([2usize, 3]),
            Subspace::new([0usize, 1, 2, 3]),
        ] {
            let key = ModelKey::new("planted", canon, sub.clone());
            let entry = reg.get_or_fit(&key, &ds, det.as_ref());
            // The scorer is the engine's scoring primitive: project →
            // score_all → standardize.
            let scorer = SubspaceScorer::new(&ds, &det);
            let direct = scorer.scores(&sub);
            assert_eq!(
                entry.scores().as_slice(),
                direct.as_slice(),
                "{canon} on {sub}: registry and scorer disagree"
            );
            // And against the raw detector call, spelled out.
            let by_hand = standardize_scores(&det.score_all(&ds.project(&sub)));
            assert_eq!(entry.scores().as_slice(), by_hand, "{canon} on {sub}");
        }
    }
}

#[test]
fn served_score_matches_direct_detector_call_for_all_detectors() {
    let ds = planted();
    let outlier = ds.n_rows() - 1;
    let svc = Arc::new(ExplanationService::new());
    svc.register_dataset("planted", planted()).unwrap();
    let handle = ServeHandle::start(Arc::clone(&svc), BatchConfig::default(), None);
    for (spec, det) in paper_detectors() {
        let resp = handle.roundtrip(Request {
            id: 1,
            body: RequestBody::Score {
                dataset: "planted".into(),
                detector: spec.into(),
                subspace: Some(vec![0, 1]),
                point: outlier,
            },
        });
        assert!(resp.ok, "{spec}: {:?}", resp.error);
        let direct =
            standardize_scores(&det.score_all(&ds.project(&Subspace::new([0usize, 1]))))[outlier];
        assert_eq!(resp.score, Some(direct), "{spec}: served score drifted");
    }
}

#[test]
fn served_explanation_is_bit_identical_to_a_direct_engine_run() {
    let ds = planted();
    let outlier = ds.n_rows() - 1;
    let svc = Arc::new(ExplanationService::new());
    svc.register_dataset("planted", planted()).unwrap();
    let handle = ServeHandle::start(svc, BatchConfig::default(), None);

    // Beam (point explainer) and LookOut (summarizer), per the paper's
    // point/summary split.
    let cases: Vec<(&str, ExplainerKind)> = vec![
        ("beam", ExplainerKind::Point(Box::new(Beam::new()))),
        (
            "lookout:budget=3",
            ExplainerKind::Summary(Box::new(LookOut::new().budget(3))),
        ),
    ];
    for (spec, kind) in cases {
        let resp = handle.roundtrip(Request {
            id: 2,
            body: RequestBody::Explain {
                dataset: "planted".into(),
                detector: "lof:k=10".into(),
                explainer: spec.into(),
                pipeline: None,
                point: outlier,
                dim: 2,
            },
        });
        assert!(resp.ok, "{spec}: {:?}", resp.error);
        let served = resp.explanation.expect("explanation present");

        let lof = Lof::new(10).unwrap();
        let engine = ExplanationEngine::new(&ds, &lof);
        let run = engine
            .run(&kind, &RunSpec::new(vec![outlier], vec![2usize]))
            .into_single();
        let direct = &run.explanations[&outlier];
        assert_eq!(served.len(), direct.len(), "{spec}");
        for (got, (sub, score)) in served.iter().zip(direct.entries()) {
            let features: Vec<usize> = sub.iter().collect();
            assert_eq!(got.subspace, features, "{spec}: subspace order drifted");
            assert_eq!(
                got.score, *score,
                "{spec}: score drifted (not bit-identical)"
            );
        }
        // The best-ranked subspace finds the planted pair.
        assert_eq!(served[0].subspace, vec![0, 1], "{spec}");
    }
}

/// Drops the per-request timing (queue/exec micros vary run to run) so
/// the remaining payload can be compared bit-for-bit as serialized JSON.
fn wire_payload(resp: &anomex_serve::protocol::Response) -> String {
    let mut stripped = resp.clone();
    stripped.timing = None;
    serde_json::to_string(&stripped).unwrap()
}

#[test]
fn inline_pipeline_requests_match_the_legacy_wire_bit_for_bit() {
    let ds = planted();
    let outlier = ds.n_rows() - 1;
    let svc = Arc::new(ExplanationService::new());
    svc.register_dataset("planted", planted()).unwrap();
    let handle = ServeHandle::start(svc, BatchConfig::default(), None);

    // The exact line an old client sends, byte for byte.
    let legacy_line = format!(
        r#"{{"id":7,"op":"explain","dataset":"planted","detector":"lof:k=10","explainer":"beam","point":{outlier},"dim":2}}"#
    );
    let legacy = handle
        .submit_line(&legacy_line)
        .expect("non-blank line")
        .resolve();
    assert!(legacy.ok, "{:?}", legacy.error);
    assert!(legacy.explanation.is_some());

    // The same pipeline as one inline spec value: compact string form
    // and canonical JSON object form.
    for pipeline in [
        serde_json::json!("beam+lof:k=10"),
        serde_json::json!({
            "explainer": {"kind": "beam"},
            "detector": {"kind": "lof", "k": 10},
        }),
    ] {
        let inline = handle.roundtrip(Request {
            id: 7,
            body: RequestBody::Explain {
                dataset: "planted".into(),
                detector: String::new(),
                explainer: String::new(),
                pipeline: Some(pipeline.clone()),
                point: outlier,
                dim: 2,
            },
        });
        assert!(inline.ok, "{pipeline}: {:?}", inline.error);
        assert_eq!(
            wire_payload(&inline),
            wire_payload(&legacy),
            "{pipeline}: inline pipeline drifted from the legacy wire"
        );
    }
}

#[test]
fn inline_pipeline_summaries_match_legacy_spec_strings() {
    let svc = Arc::new(ExplanationService::new());
    svc.register_dataset("planted", planted()).unwrap();
    let handle = ServeHandle::start(svc, BatchConfig::default(), None);

    let legacy = handle.roundtrip(Request {
        id: 11,
        body: RequestBody::Summarize {
            dataset: "planted".into(),
            detector: "lof:k=10".into(),
            explainer: "lookout:budget=2".into(),
            pipeline: None,
            points: vec![0, 40, 80],
            dim: 2,
        },
    });
    assert!(legacy.ok, "{:?}", legacy.error);
    let fits_after_legacy = handle.service().registry().stats().fits;

    let inline = handle.roundtrip(Request {
        id: 11,
        body: RequestBody::Summarize {
            dataset: "planted".into(),
            detector: String::new(),
            explainer: String::new(),
            pipeline: Some(serde_json::json!("lookout:budget=2+lof:k=10")),
            points: vec![0, 40, 80],
            dim: 2,
        },
    });
    assert!(inline.ok, "{:?}", inline.error);
    assert_eq!(
        wire_payload(&inline),
        wire_payload(&legacy),
        "inline summarize pipeline drifted from the legacy wire"
    );
    // Both spellings hit the same fitted-model slots: no extra fits.
    let stats = handle.service().registry().stats();
    assert_eq!(
        stats.fits, fits_after_legacy,
        "equivalent specs refit already-fitted models"
    );
}

#[test]
fn eight_concurrent_clients_get_identical_answers() {
    let svc = Arc::new(ExplanationService::new());
    svc.register_dataset("planted", planted()).unwrap();
    let handle = Arc::new(ServeHandle::start(
        svc,
        BatchConfig {
            max_batch: 8,
            workers: 2,
            ..BatchConfig::default()
        },
        None,
    ));
    let ds = planted();
    let outlier = ds.n_rows() - 1;

    // Reference answers computed single-threaded.
    let reference: Vec<_> = (0..4)
        .map(|i| {
            handle.roundtrip(Request {
                id: i,
                body: RequestBody::Score {
                    dataset: "planted".into(),
                    detector: "lof:k=10".into(),
                    subspace: Some(vec![i as usize % 4, (i as usize + 1) % 4]),
                    point: outlier,
                },
            })
        })
        .collect();
    assert!(reference.iter().all(|r| r.ok));

    let answers: Vec<Vec<Option<f64>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let handle = Arc::clone(&handle);
                scope.spawn(move || {
                    (0..4u64)
                        .map(|i| {
                            let resp = handle.roundtrip(Request {
                                id: i,
                                body: RequestBody::Score {
                                    dataset: "planted".into(),
                                    detector: "lof:k=10".into(),
                                    subspace: Some(vec![i as usize % 4, (i as usize + 1) % 4]),
                                    point: outlier,
                                },
                            });
                            assert!(resp.ok, "{:?}", resp.error);
                            assert_eq!(resp.id, i);
                            resp.score
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for client in &answers {
        for (i, score) in client.iter().enumerate() {
            assert_eq!(*score, reference[i].score, "client diverged on request {i}");
        }
    }
    // 8 clients × 4 requests over 4 distinct keys: at most 4 fits ever.
    let stats = handle.service().registry().stats();
    assert!(
        stats.fits <= 4,
        "fit-once violated: {} fits for 4 keys",
        stats.fits
    );
}

#[test]
fn overload_is_rejected_not_buffered() {
    // A tiny queue and a deliberately slow first request: the flood
    // behind it must hit Rejected (bounded memory), not pile up.
    let svc = Arc::new(ExplanationService::new());
    svc.register_dataset("planted", planted()).unwrap();
    let handle = ServeHandle::start(
        svc,
        BatchConfig {
            queue_capacity: 2,
            max_batch: 1,
            max_delay: Duration::ZERO,
            workers: 1,
        },
        None,
    );
    let slow = Request {
        id: 0,
        body: RequestBody::Summarize {
            dataset: "hics14".into(),
            detector: "lof:k=15".into(),
            explainer: "lookout:budget=2".into(),
            pipeline: None,
            points: vec![0, 1, 2],
            dim: 2,
        },
    };
    let score = |id: u64| Request {
        id,
        body: RequestBody::Score {
            dataset: "planted".into(),
            detector: "lof:k=10".into(),
            subspace: Some(vec![0, 1]),
            point: 0,
        },
    };
    let first = handle.submit(slow).expect("empty queue accepts");
    let mut queued = Vec::new();
    let mut rejected = 0usize;
    for id in 1..40u64 {
        match handle.submit(score(id)) {
            Ok(t) => queued.push(t),
            Err(e) => {
                assert_eq!(e, anomex_serve::batch::ServeError::Rejected);
                rejected += 1;
            }
        }
    }
    assert!(rejected > 0, "queue bound never engaged");
    assert!(queued.len() <= 2, "queue exceeded its capacity");
    // Everything accepted still completes correctly.
    assert!(first.wait().expect("slow request completes").ok);
    for t in queued {
        assert!(t.wait().expect("queued request completes").ok);
    }
}
