//! The reactor edge must not change a single bit of any result.
//!
//! The tier-1 bar for the event-loop front end: responses read off a
//! real socket served by [`ReactorServer`] are bit-identical — payload
//! minus per-request timing — to the legacy thread-per-connection edge
//! and to direct detector / `ExplanationEngine` computation, under 8+
//! concurrent pipelining clients. Plus the wire shape of SLO load
//! shedding: a typed `overloaded` error line, then recovery.

use anomex_dataset::{Dataset, Subspace};
use anomex_detectors::zscore::standardize_scores;
use anomex_detectors::{Detector, Lof};
use anomex_reactor::ReactorConfig;
use anomex_serve::batch::BatchConfig;
use anomex_serve::front::ReactorServer;
use anomex_serve::protocol::{ErrorCode, Request, RequestBody, Response};
use anomex_serve::service::{ExplanationService, ServeHandle};
use anomex_serve::shed::SloConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A 4-feature dataset with one outlier planted in features {0, 1} —
/// the same fixture as the in-process crosscheck suite.
fn planted() -> Dataset {
    let mut rng = StdRng::seed_from_u64(21);
    let mut rows: Vec<Vec<f64>> = (0..80)
        .map(|_| {
            let t: f64 = rng.gen_range(0.1..0.9);
            vec![
                t + rng.gen_range(-0.02..0.02),
                t + rng.gen_range(-0.02..0.02),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
            ]
        })
        .collect();
    rows.push(vec![0.2, 0.8, 0.5, 0.5]);
    Dataset::from_rows(rows).unwrap()
}

fn served_handle() -> Arc<ServeHandle> {
    let svc = Arc::new(ExplanationService::new());
    svc.register_dataset("planted", planted()).unwrap();
    Arc::new(ServeHandle::start(
        svc,
        BatchConfig {
            max_batch: 8,
            workers: 2,
            ..BatchConfig::default()
        },
        None,
    ))
}

fn score_request(id: u64) -> Request {
    let i = id as usize;
    Request {
        id,
        body: RequestBody::Score {
            dataset: "planted".into(),
            detector: "lof:k=10".into(),
            subspace: Some(vec![i % 4, (i + 1) % 4]),
            point: 80,
        },
    }
}

/// Writes every line up front (pipelining), then reads one response
/// line per request — the FIFO contract means no ids are needed to
/// correlate, but we still check them.
fn pipeline_lines(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect to reactor");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut payload = String::new();
    for line in lines {
        payload.push_str(line);
        payload.push('\n');
    }
    writer.write_all(payload.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    lines
        .iter()
        .map(|_| {
            let mut out = String::new();
            reader.read_line(&mut out).expect("response line");
            assert!(out.ends_with('\n'), "short read");
            out.trim_end().to_string()
        })
        .collect()
}

/// Drops the per-request timing (queue/exec micros vary run to run) so
/// the remaining payload can be compared bit-for-bit as serialized JSON.
fn wire_payload(resp: &Response) -> String {
    let mut stripped = resp.clone();
    stripped.timing = None;
    serde_json::to_string(&stripped).unwrap()
}

fn parse_line(line: &str) -> Response {
    serde_json::from_str(line).unwrap_or_else(|e| panic!("bad response line '{line}': {e}"))
}

#[test]
fn eight_concurrent_reactor_clients_match_the_direct_engine_bit_for_bit() {
    let handle = served_handle();
    let server = ReactorServer::start(Arc::clone(&handle), "127.0.0.1:0", ReactorConfig::default())
        .expect("bind reactor");
    let addr = server.addr();

    // Reference answers computed two independent ways: the raw
    // detector call (the engine's scoring primitive) and an in-process
    // roundtrip through the same handle.
    let ds = planted();
    let det = Lof::new(10).unwrap();
    let direct_scores: Vec<f64> = (0..4)
        .map(|i| {
            let sub = Subspace::new([i % 4, (i + 1) % 4]);
            standardize_scores(&det.score_all(&ds.project(&sub)))[80]
        })
        .collect();
    let direct_payloads: Vec<String> = (0..4)
        .map(|i| wire_payload(&handle.roundtrip(score_request(i))))
        .collect();

    let lines: Vec<String> = (0..4)
        .map(|i| serde_json::to_string(&score_request(i)).unwrap())
        .collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..8)
            .map(|_| {
                let lines = lines.clone();
                scope.spawn(move || pipeline_lines(addr, &lines))
            })
            .collect();
        for worker in workers {
            let answers = worker.join().unwrap();
            for (i, line) in answers.iter().enumerate() {
                let resp = parse_line(line);
                assert!(resp.ok, "request {i}: {:?}", resp.error);
                assert_eq!(resp.id, i as u64, "pipelined order broke");
                assert_eq!(
                    resp.score.map(f64::to_bits),
                    Some(direct_scores[i].to_bits()),
                    "request {i}: served score is not bit-identical"
                );
                assert_eq!(
                    wire_payload(&resp),
                    direct_payloads[i],
                    "request {i}: payload drifted from the direct roundtrip"
                );
            }
        }
    });

    let stats = server.stop().expect("clean reactor shutdown");
    assert!(stats.accepted >= 8, "8 clients accepted: {stats:?}");
    assert_eq!(stats.lines_in, 32, "{stats:?}");
    assert_eq!(stats.responses_out, 32, "{stats:?}");
}

#[test]
fn reactor_and_threaded_edges_serve_equal_payloads() {
    let handle = served_handle();
    let reactor =
        ReactorServer::start(Arc::clone(&handle), "127.0.0.1:0", ReactorConfig::default())
            .expect("bind reactor");

    // A minimal thread-per-connection edge, mirroring the serve
    // binary's legacy `serve_connection` loop line for line.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let threaded_addr = listener.local_addr().unwrap();
    let threaded_handle = Arc::clone(&handle);
    let acceptor = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for line in reader.lines() {
            let Ok(line) = line else { break };
            let Some(submitted) = threaded_handle.submit_line(&line) else {
                continue;
            };
            let resp = submitted.resolve();
            let text = serde_json::to_string(&resp).unwrap();
            if writeln!(writer, "{text}").is_err() {
                break;
            }
        }
    });

    let requests = vec![
        serde_json::to_string(&score_request(0)).unwrap(),
        r#"{"id":1,"op":"explain","dataset":"planted","detector":"lof:k=10","explainer":"beam","point":80,"dim":2}"#.to_string(),
        r#"{"id":2,"op":"summarize","dataset":"planted","detector":"lof:k=10","explainer":"lookout:budget=2","points":[0,40,80],"dim":2}"#.to_string(),
    ];
    // Warm the models through the direct path first so all three edges
    // read the same fitted entries.
    let direct: Vec<String> = requests
        .iter()
        .map(|line| wire_payload(&handle.submit_line(line).expect("non-blank line").resolve()))
        .collect();

    let via_reactor = pipeline_lines(reactor.addr(), &requests);
    let via_threads = pipeline_lines(threaded_addr, &requests);
    acceptor.join().unwrap();
    reactor.stop().expect("clean reactor shutdown");

    for (i, expected) in direct.iter().enumerate() {
        assert_eq!(
            &wire_payload(&parse_line(&via_reactor[i])),
            expected,
            "request {i}: reactor drifted from the direct engine"
        );
        assert_eq!(
            &wire_payload(&parse_line(&via_threads[i])),
            expected,
            "request {i}: threaded edge drifted from the direct engine"
        );
    }
}

#[test]
fn pipelined_responses_come_back_in_submission_order() {
    let handle = served_handle();
    let server = ReactorServer::start(Arc::clone(&handle), "127.0.0.1:0", ReactorConfig::default())
        .expect("bind reactor");

    // Mixed costs: summaries (slow, fit-heavy) interleaved with cheap
    // scores, so completion order differs from submission order unless
    // the per-connection FIFO holds.
    let lines: Vec<String> = (0..16u64)
        .map(|id| {
            if id % 4 == 0 {
                format!(
                    r#"{{"id":{id},"op":"summarize","dataset":"planted","detector":"lof:k=10","explainer":"lookout:budget=2","points":[0,40,80],"dim":2}}"#
                )
            } else {
                serde_json::to_string(&score_request(id)).unwrap()
            }
        })
        .collect();
    let answers = pipeline_lines(server.addr(), &lines);
    for (i, line) in answers.iter().enumerate() {
        let resp = parse_line(line);
        assert!(resp.ok, "request {i}: {:?}", resp.error);
        assert_eq!(resp.id, i as u64, "response order diverged at {i}");
    }
    server.stop().expect("clean reactor shutdown");
}

#[test]
fn synthetic_overload_sheds_a_typed_overloaded_line_then_recovers() {
    let svc = Arc::new(ExplanationService::new());
    svc.register_dataset("planted", planted()).unwrap();
    let handle = Arc::new(ServeHandle::start_with_slo(
        svc,
        BatchConfig::default(),
        None,
        Some(SloConfig {
            queue_wait_limit_micros: 1_000,
            quantile: 0.5,
            min_observations: 16,
            eval_interval: Duration::ZERO,
        }),
    ));
    let server = ReactorServer::start(Arc::clone(&handle), "127.0.0.1:0", ReactorConfig::default())
        .expect("bind reactor");
    let shed_before = anomex_obs::counter("serve.shed.shed_requests").get();

    // Synthetic overload: flood the live queue-wait histogram with
    // 60ms waits, far past the 1ms budget. (Driving the shared metric
    // directly keeps the violation deterministic; the CI smoke test
    // induces it with real queue pressure.)
    let h = anomex_obs::histogram("serve.batch.queue_wait_micros");
    for _ in 0..400 {
        h.observe(60_000);
    }
    let line = serde_json::to_string(&score_request(0)).unwrap();
    let shed = parse_line(&pipeline_lines(server.addr(), std::slice::from_ref(&line))[0]);
    assert!(!shed.ok, "overloaded request must fail");
    assert_eq!(
        shed.code,
        Some(ErrorCode::Overloaded),
        "shed must be the typed overloaded error: {shed:?}"
    );
    assert!(
        anomex_obs::counter("serve.shed.shed_requests").get() > shed_before,
        "shed requests must be counted in obs metrics"
    );

    // The violating window was consumed by that evaluation; the next
    // window is sparse (shedding starves the histogram), so the shed
    // releases and traffic is re-admitted.
    let recovered = parse_line(&pipeline_lines(server.addr(), std::slice::from_ref(&line))[0]);
    assert!(
        recovered.ok,
        "shed must release on a quiet window: {recovered:?}"
    );
    server.stop().expect("clean reactor shutdown");
}
