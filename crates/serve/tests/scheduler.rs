//! Property tests for the micro-batching scheduler (satellite c).
//!
//! Three properties, over randomized workloads:
//!
//! 1. every response carries the id of the request that produced it —
//!    batching never crosses wires;
//! 2. batch composition is unobservable: the same requests produce the
//!    same results no matter how the scheduler slices them into batches
//!    (config, worker count and arrival order varied);
//! 3. an expired deadline resolves to `TimedOut` — it never hangs the
//!    caller.
//!
//! Each proptest case spins up real worker threads, so the case count
//! is kept deliberately small.

use anomex_serve::batch::{BatchConfig, Batcher, ServeError};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// A handler deterministic in the request alone: ids must survive the
/// trip untouched, payload results must not depend on batch slicing.
fn arithmetic_batcher(cfg: BatchConfig) -> Batcher<(u64, u64), (u64, u64)> {
    Batcher::new(cfg, |&(id, x): &(u64, u64), _ctx| {
        (id, x.wrapping_mul(2654435761).rotate_left(13))
    })
}

fn expected(x: u64) -> u64 {
    x.wrapping_mul(2654435761).rotate_left(13)
}

fn small_config() -> impl Strategy<Value = BatchConfig> {
    (1usize..=64, 1usize..=8, 0u64..=3, 1usize..=4).prop_map(
        |(queue_capacity, max_batch, delay_ms, workers)| BatchConfig {
            queue_capacity,
            max_batch,
            max_delay: Duration::from_millis(delay_ms),
            workers,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1: response ids match request ids, for every request
    /// that the queue accepts, across arbitrary configs and loads.
    #[test]
    fn responses_carry_their_own_request_id(
        cfg in small_config(),
        payloads in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        let batcher = arithmetic_batcher(cfg);
        let mut accepted = Vec::new();
        for (id, &x) in payloads.iter().enumerate() {
            // Tiny queues may reject under load; Rejected is a valid
            // answer, crossed wires are not.
            if let Ok(ticket) = batcher.submit((id as u64, x), None) {
                accepted.push((id as u64, x, ticket));
            }
        }
        for (id, x, ticket) in accepted {
            let (got_id, got) = ticket.wait().expect("accepted request completes");
            prop_assert_eq!(got_id, id, "response for a different request");
            prop_assert_eq!(got, expected(x));
        }
    }

    /// Property 2: slicing the same workload into different batches
    /// (different configs, submission from several threads) never
    /// changes any result.
    #[test]
    fn batch_composition_never_changes_results(
        cfg_a in small_config(),
        cfg_b in small_config(),
        payloads in proptest::collection::vec(any::<u64>(), 1..48),
    ) {
        let run = |cfg: BatchConfig, threads: usize| -> Vec<u64> {
            // A queue at least as large as the workload: acceptance is
            // total, so the two runs cover identical request sets.
            let cfg = BatchConfig { queue_capacity: payloads.len(), ..cfg };
            let batcher = Arc::new(arithmetic_batcher(cfg));
            let results: Vec<(u64, u64)> = std::thread::scope(|scope| {
                let chunk = payloads.len().div_ceil(threads);
                let handles: Vec<_> = payloads
                    .chunks(chunk)
                    .enumerate()
                    .map(|(c, part)| {
                        let batcher = Arc::clone(&batcher);
                        scope.spawn(move || {
                            part.iter()
                                .enumerate()
                                .map(|(i, &x)| {
                                    batcher
                                        .submit(((c * chunk + i) as u64, x), None)
                                        .expect("queue sized for workload")
                                        .wait()
                                        .expect("request completes")
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
            });
            let mut by_id: Vec<(u64, u64)> = results;
            by_id.sort_unstable();
            by_id.into_iter().map(|(_, v)| v).collect()
        };
        let sequential = run(cfg_a, 1);
        let threaded = run(cfg_b, 3);
        prop_assert_eq!(sequential, threaded, "batch slicing leaked into results");
    }

    /// Property 3: a deadline that expires while the queue is wedged
    /// resolves to `TimedOut`; it must never hang.
    #[test]
    fn expired_deadlines_time_out_instead_of_hanging(
        deadline_ms in 0u64..=5,
        stalled in 1usize..=8,
    ) {
        // One worker blocked on a slow request wedges everything behind
        // it past any millisecond-scale deadline.
        let batcher: Batcher<u64, u64> = Batcher::new(
            BatchConfig {
                queue_capacity: 64,
                max_batch: 1,
                max_delay: Duration::ZERO,
                workers: 1,
            },
            |&x, _ctx| {
                if x == u64::MAX {
                    std::thread::sleep(Duration::from_millis(300));
                }
                x
            },
        );
        let slow = batcher.submit(u64::MAX, None).unwrap();
        let tickets: Vec<_> = (0..stalled as u64)
            .map(|i| {
                batcher
                    .submit(i, Some(Duration::from_millis(deadline_ms)))
                    .unwrap()
            })
            .collect();
        for ticket in tickets {
            match ticket.wait() {
                Err(ServeError::TimedOut) | Ok(_) => {}
                other => prop_assert!(false, "unexpected outcome: {other:?}"),
            }
        }
        prop_assert_eq!(slow.wait(), Ok(u64::MAX));
    }
}
