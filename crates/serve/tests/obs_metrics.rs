//! Reconciliation of the process-wide `serve.batch.*` observability
//! counters with the scheduler's own [`BatchStats`] under a concurrent
//! 8-client load: the two meter the same events at the same call sites,
//! so their deltas must agree *exactly* — any drift means an
//! instrumentation point was added, dropped, or double-counted.
//!
//! This file holds exactly one test: obs counters are process-global,
//! and a sibling test running concurrently in the same binary would
//! pollute the snapshot delta. Integration-test files are separate
//! processes, so the rest of the suite cannot interfere.
//!
//! [`BatchStats`]: anomex_serve::batch::BatchStats

use anomex_serve::batch::{BatchConfig, Batcher};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: u64 = 8;
const REQUESTS_PER_CLIENT: u64 = 50;

#[test]
fn obs_counters_reconcile_with_batch_stats_under_eight_clients() {
    let before = anomex_obs::snapshot();

    let cfg = BatchConfig {
        queue_capacity: (CLIENTS * REQUESTS_PER_CLIENT) as usize,
        max_batch: 8,
        max_delay: Duration::from_millis(1),
        workers: 2,
    };
    let batcher: Arc<Batcher<u64, u64>> =
        Arc::new(Batcher::new(cfg, |&x: &u64, _ctx| x.wrapping_mul(3)));

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let batcher = Arc::clone(&batcher);
            scope.spawn(move || {
                for i in 0..REQUESTS_PER_CLIENT {
                    let x = c * 1_000 + i;
                    let ticket = batcher
                        .submit(x, None)
                        .expect("queue sized for the whole workload");
                    assert_eq!(ticket.wait(), Ok(x.wrapping_mul(3)));
                }
            });
        }
    });

    let stats = batcher.stats();
    let after = anomex_obs::snapshot();
    let delta = after.counters_since(&before);
    let get = |name: &str| delta.get(name).copied().unwrap_or(0);

    // The workload itself: every request accepted and completed.
    let total = CLIENTS * REQUESTS_PER_CLIENT;
    assert_eq!(stats.submitted as u64, total);
    assert_eq!(stats.completed as u64, total);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.timed_out, 0);
    assert_eq!(stats.failed, 0);

    // Counter-for-counter parity with the scheduler's own telemetry.
    assert_eq!(get("serve.batch.submitted"), stats.submitted as u64);
    assert_eq!(get("serve.batch.completed"), stats.completed as u64);
    assert_eq!(get("serve.batch.batches"), stats.batches as u64);
    assert_eq!(get("serve.batch.rejected"), 0);
    assert_eq!(get("serve.batch.deadline_misses"), 0);
    assert_eq!(get("serve.batch.failed"), 0);

    // Histogram reconciliation: one batch-size observation per batch,
    // whose values sum to the executed requests; one queue-wait
    // observation per executed request.
    let sizes = after
        .histograms
        .get("serve.batch.size")
        .expect("batch-size histogram exists");
    assert_eq!(sizes.count, stats.batches as u64);
    assert_eq!(sizes.sum, total);
    let waits = after
        .histograms
        .get("serve.batch.queue_wait_micros")
        .expect("queue-wait histogram exists");
    assert_eq!(waits.count, total);
}
