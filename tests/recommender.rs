//! End-to-end validation of the profile-driven recommender: profiling a
//! dataset, asking `anomex_spec::recommend` for a pipeline, and scoring
//! the choice against a really-measured fixed grid.
//!
//! The fixture reuses the `golden-6d` construction of
//! `tests/golden_grid.rs` *without* the decoy ground-truth entry, so the
//! recommended Beam_FX+LOF pipeline scores MAP = 1.0 exactly at every
//! dimensionality (each planted subspace leads its runner-up by > 3
//! standardized-score units — see the golden test's module docs). That
//! makes the headline claim (`recommended mean MAP >= fixed-pipeline
//! mean MAP`) hold by construction, while the grid, profiling and
//! cell-matching are all exercised for real.

use anomex_dataset::{Dataset, GroundTruth, Subspace};
use anomex_eval::datasets::{CustomFamily, TestbedDataset};
use anomex_eval::experiment::ExperimentConfig;
use anomex_eval::recommend::{spec_label, validate_recommender};
use anomex_eval::runner::run_grid;
use anomex_spec::RecommendTask;

/// SplitMix64, pinned byte-for-byte to the golden fixture's stream.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn jitter(&mut self) -> f64 {
        (self.next_f64() - 0.5) * 0.1
    }
}

const FAMILY: CustomFamily = CustomFamily {
    name: "recommender-6d",
    n_features: 6,
    dims: &[2, 3],
};

/// The `golden-6d` data (identical RNG stream) with unambiguous ground
/// truth: A/B break the `{0,1}` diagonal, C sits at the odd-parity
/// corner of the XOR clusters over `{2,3,4}`. No decoy entry, so a
/// pipeline that top-ranks each planted subspace scores exactly 1.0.
fn fixture() -> TestbedDataset {
    let mut rng = SplitMix64(0x5EED_601D_E421);
    let centers = [0.2, 0.8];
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(103);
    for i in 0..100usize {
        let t = i as f64 / 99.0;
        let b2 = [0, 1, 0, 1][i % 4];
        let b3 = [0, 0, 1, 1][i % 4];
        let b4 = b2 ^ b3;
        rows.push(vec![
            t,
            t,
            centers[b2] + rng.jitter(),
            centers[b3] + rng.jitter(),
            centers[b4] + rng.jitter(),
            rng.next_f64(),
        ]);
    }
    rows.push(vec![
        0.05,
        0.95,
        centers[0] + rng.jitter(),
        centers[0] + rng.jitter(),
        centers[0] + rng.jitter(),
        rng.next_f64(),
    ]);
    rows.push(vec![
        0.95,
        0.05,
        centers[1] + rng.jitter(),
        centers[1] + rng.jitter(),
        centers[0] + rng.jitter(),
        rng.next_f64(),
    ]);
    rows.push(vec![
        0.525,
        0.525,
        centers[0] + rng.jitter(),
        centers[0] + rng.jitter(),
        centers[1] + rng.jitter(),
        rng.next_f64(),
    ]);

    let dataset = Dataset::from_rows(rows).expect("valid fixture rows");
    let mut gt = GroundTruth::new();
    gt.add(100, Subspace::new([0usize, 1]));
    gt.add(101, Subspace::new([0usize, 1]));
    gt.add(102, Subspace::new([2usize, 3, 4]));
    TestbedDataset::from_parts(FAMILY, dataset, gt)
}

#[test]
fn recommender_beats_the_mean_fixed_pipeline_on_a_measured_grid() {
    let tb = fixture();
    let cfg = ExperimentConfig::fast(42);
    let table = run_grid("recommender", &[tb.clone()], &cfg.point_pipelines(), &cfg);
    let v = validate_recommender(&[tb], &table, &cfg.point_specs(), RecommendTask::Point);

    assert_eq!(v.rows.len(), 1);
    let row = &v.rows[0];
    // 6 features < the high-dim threshold -> LOF; point task -> Beam.
    assert_eq!(row.label, "Beam_FX+LOF");
    assert_eq!(row.recommendation.profile.n_features, 6);
    assert!(row.recommendation.trace.iter().any(|t| t.fired));

    // Beam top-ranks every planted subspace on this fixture, so the
    // recommended pipeline's measured MAP is exactly 1.0 — and the mean
    // over all six fixed point pipelines can therefore never beat it.
    assert_eq!(row.map, Some(1.0));
    assert_eq!(v.recommended_mean_map, 1.0);
    assert!(
        v.recommended_mean_map >= v.fixed_mean_map,
        "recommender mean {} below fixed mean {}",
        v.recommended_mean_map,
        v.fixed_mean_map
    );
    assert_eq!(v.fixed_pipeline_means.len(), 6);
}

#[test]
fn high_dimensional_datasets_are_routed_to_fast_abod() {
    let g =
        anomex_dataset::gen::hics::generate_hics(anomex_dataset::gen::hics::HicsPreset::D14, 42);
    let profile = anomex_core::profile_dataset(&g.dataset);
    assert_eq!(profile.n_features, 14);

    let rec = anomex_spec::recommend(&profile, RecommendTask::Point);
    assert_eq!(spec_label(&rec.spec), "Beam_FX+FastABOD");
    let fired: Vec<&str> = rec
        .trace
        .iter()
        .filter(|t| t.fired)
        .map(|t| t.rule.as_str())
        .collect();
    assert!(fired.contains(&"detector.high_dim"), "trace: {fired:?}");

    let summary = anomex_spec::recommend(&profile, RecommendTask::Summary);
    assert_eq!(spec_label(&summary.spec), "LookOut+LOF");
}
