//! Metamorphic properties of the explanation pipelines: relabeling,
//! duplicating, or affinely transforming features must not change what
//! an explainer finds.
//!
//! Two flavors of assertion:
//!
//! * **Bit-exact** where IEEE-754 guarantees it: permuting the two
//!   features of a pair, appending an unused duplicate feature, and
//!   scaling every value by a power of two all commute exactly with
//!   LOF's arithmetic, so the full ranked output (subspaces *and*
//!   scores) must be identical.
//! * **Rank-level** where floating-point round-off makes values drift
//!   (arbitrary per-feature shifts): only the decisively-separated
//!   winners are pinned, not the full score vector.

use anomex::prelude::*;
use anomex_dataset::{Dataset, Subspace};
use anomex_detectors::kernels::{knn_table_blocked, knn_table_blocked_f32};
use anomex_detectors::{Detector, KnnDist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 6-feature dataset where the last point deviates ONLY in features
/// {1, 4} jointly (correlated tube, masked in every 1d marginal) — the
/// same construction Beam's unit tests pin as decisively explainable.
fn planted() -> (Dataset, usize, Subspace) {
    let mut rng = StdRng::seed_from_u64(77);
    let n = 200;
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    for _ in 0..n {
        let t: f64 = rng.gen_range(0.1..0.9);
        let mut r = vec![0.0; 6];
        for (f, slot) in r.iter_mut().enumerate() {
            *slot = match f {
                1 | 4 => t + rng.gen_range(-0.02..0.02),
                _ => rng.gen_range(0.0..1.0),
            };
        }
        rows.push(r);
    }
    let mut out = vec![0.0; 6];
    for (f, slot) in out.iter_mut().enumerate() {
        *slot = match f {
            1 => 0.3,
            4 => 0.7,
            _ => rng.gen_range(0.0..1.0),
        };
    }
    rows.push(out);
    (
        Dataset::from_rows(rows).unwrap(),
        n,
        Subspace::new([1usize, 4]),
    )
}

fn transform_rows(ds: &Dataset, f: impl Fn(usize, f64) -> f64) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..ds.n_rows())
        .map(|i| {
            ds.row(i)
                .into_iter()
                .enumerate()
                .map(|(j, v)| f(j, v))
                .collect()
        })
        .collect();
    Dataset::from_rows(rows).unwrap()
}

fn beam() -> Beam {
    Beam::new().beam_width(15).result_size(15)
}

fn refout() -> RefOut {
    RefOut::new()
        .pool_size(25)
        .beam_width(10)
        .result_size(15)
        .seed(7)
}

/// Relabeling features relabels the explanation — nothing else. At 2d
/// the projection sums two squared differences, and two-term addition
/// is commutative in IEEE-754, so even the scores are bit-identical.
#[test]
fn beam_is_equivariant_under_feature_permutation() {
    let (ds, point, truth) = planted();
    let perm = [3usize, 5, 0, 2, 1, 4]; // original feature f -> perm[f]
    let permuted = {
        let rows: Vec<Vec<f64>> = (0..ds.n_rows())
            .map(|i| {
                let row = ds.row(i);
                let mut r = vec![0.0; 6];
                for (f, &pf) in perm.iter().enumerate() {
                    r[pf] = row[f];
                }
                r
            })
            .collect();
        Dataset::from_rows(rows).unwrap()
    };

    let lof = Lof::new(10).unwrap();
    let original = beam().explain(&SubspaceScorer::new(&ds, &lof), point, 2);
    let relabeled = beam().explain(&SubspaceScorer::new(&permuted, &lof), point, 2);

    // Map the original ranking through the permutation and re-rank with
    // the explainer's own comparator (score desc, subspace asc).
    let mut mapped: Vec<(Subspace, f64)> = original
        .entries()
        .iter()
        .map(|(s, v)| {
            (
                Subspace::new(s.features().iter().map(|&f| perm[f as usize])),
                *v,
            )
        })
        .collect();
    mapped.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    assert_eq!(relabeled.entries(), mapped.as_slice());
    assert_eq!(
        relabeled.best(),
        Some(&Subspace::new(
            truth.features().iter().map(|&f| perm[f as usize])
        ))
    );
}

/// Appending a copy of an existing feature adds subspaces *about* the
/// copy but must not reorder or rescore any subspace that ignores it.
#[test]
fn beam_ranking_survives_a_duplicated_feature() {
    let (ds, point, truth) = planted();
    let dup: u16 = 6; // new feature index: a copy of feature 0
    let widened = {
        let rows: Vec<Vec<f64>> = (0..ds.n_rows())
            .map(|i| {
                let mut r = ds.row(i);
                r.push(r[0]);
                r
            })
            .collect();
        Dataset::from_rows(rows).unwrap()
    };

    let lof = Lof::new(10).unwrap();
    let original = Beam::new().beam_width(30).result_size(30).explain(
        &SubspaceScorer::new(&ds, &lof),
        point,
        2,
    );
    let with_dup = Beam::new().beam_width(30).result_size(30).explain(
        &SubspaceScorer::new(&widened, &lof),
        point,
        2,
    );

    let surviving: Vec<(Subspace, f64)> = with_dup
        .entries()
        .iter()
        .filter(|(s, _)| !s.features().contains(&dup))
        .cloned()
        .collect();
    assert_eq!(surviving.as_slice(), original.entries());
    assert_eq!(with_dup.len(), 21); // C(7,2): the copy adds 6 new pairs
    assert_eq!(original.best(), Some(&truth));
}

/// Scaling every value by a power of two commutes exactly with LOF's
/// arithmetic (distances, reachability means and ratios all scale
/// without rounding), so Beam and RefOut outputs are bit-identical.
#[test]
fn explainers_are_invariant_under_power_of_two_scaling() {
    let (ds, point, _) = planted();
    let scaled = transform_rows(&ds, |_, v| v * 4.0);
    let lof = Lof::new(10).unwrap();

    for dim in [2usize, 3] {
        let a = beam().explain(&SubspaceScorer::new(&ds, &lof), point, dim);
        let b = beam().explain(&SubspaceScorer::new(&scaled, &lof), point, dim);
        assert_eq!(a.entries(), b.entries(), "Beam diverged at {dim}d");
    }
    let a = refout().explain(&SubspaceScorer::new(&ds, &lof), point, 2);
    let b = refout().explain(&SubspaceScorer::new(&scaled, &lof), point, 2);
    assert_eq!(a.entries(), b.entries(), "RefOut diverged under scaling");
}

/// Arbitrary per-feature shifts perturb distances at round-off scale;
/// the decisively-separated winner must survive them.
#[test]
fn explainers_keep_their_winner_under_per_feature_shifts() {
    let (ds, point, truth) = planted();
    let offsets = [10.0, -3.0, 7.5, 100.0, 0.25, -42.0];
    let shifted = transform_rows(&ds, |f, v| v + offsets[f]);
    let lof = Lof::new(10).unwrap();

    let beam_orig = beam().explain(&SubspaceScorer::new(&ds, &lof), point, 2);
    let beam_shift = beam().explain(&SubspaceScorer::new(&shifted, &lof), point, 2);
    assert_eq!(beam_orig.best(), Some(&truth));
    assert_eq!(beam_shift.best(), Some(&truth));

    let ref_orig = refout().explain(&SubspaceScorer::new(&ds, &lof), point, 2);
    let ref_shift = refout().explain(&SubspaceScorer::new(&shifted, &lof), point, 2);
    assert_eq!(ref_orig.best(), ref_shift.best());
}

/// Precision-invariance: relabeling features leaves every pairwise
/// distance mathematically unchanged, but under `precision=f32` the
/// per-feature accumulation order moves with the labels, so distances
/// may drift in the last bits. Neighbour *ranks* must not: any
/// neighbour-slot disagreement between the two f32 tables is allowed
/// only where the f64 reference says the two candidates are tied to
/// within single-precision resolution.
#[test]
fn f32_knn_ranks_survive_feature_permutation() {
    let (ds, _, _) = planted();
    let perm = [3usize, 5, 0, 2, 1, 4];
    let permuted = {
        let rows: Vec<Vec<f64>> = (0..ds.n_rows())
            .map(|i| {
                let row = ds.row(i);
                let mut r = vec![0.0; 6];
                for (f, &pf) in perm.iter().enumerate() {
                    r[pf] = row[f];
                }
                r
            })
            .collect();
        Dataset::from_rows(rows).unwrap()
    };

    let k = 10;
    let m = ds.full_matrix();
    let base = knn_table_blocked_f32(&m, k);
    let relabeled = knn_table_blocked_f32(&permuted.full_matrix(), k);
    for i in 0..ds.n_rows() {
        for (slot, (&a, &b)) in base
            .neighbors(i)
            .iter()
            .zip(relabeled.neighbors(i))
            .enumerate()
        {
            if a != b {
                let da = m.sq_dist(i, a).sqrt();
                let db = m.sq_dist(i, b).sqrt();
                assert!(
                    (da - db).abs() <= 1e-5 * da.max(1.0),
                    "row {i} slot {slot}: neighbours {a} ({da}) vs {b} ({db}) \
                     differ without an f32-resolution tie to excuse it"
                );
            }
        }
    }
}

/// Precision-invariance under row duplication: appending bitwise copies
/// of existing rows must (a) give each copy a *exactly-zero* nearest-
/// neighbour distance in the f32 table (the widened-norm cancellation
/// guarantee), and (b) leave every original row's neighbour ranking a
/// prefix-preserving superset — filtering the appended indices out of
/// the new list recovers a prefix of the old one, because original
/// pairwise distances are bit-identical and ties break toward the
/// smaller (original) index.
#[test]
fn f32_knn_ranks_survive_row_duplication() {
    let (ds, _, _) = planted();
    let n = ds.n_rows();
    let k = 8;
    let dups = [0usize, 57, 123];
    let widened = {
        let mut rows: Vec<Vec<f64>> = (0..n).map(|i| ds.row(i).to_vec()).collect();
        for &src in &dups {
            rows.push(ds.row(src).to_vec());
        }
        Dataset::from_rows(rows).unwrap()
    };

    let base = knn_table_blocked_f32(&ds.full_matrix(), k);
    let wide = knn_table_blocked_f32(&widened.full_matrix(), k);
    let wide64 = knn_table_blocked(&widened.full_matrix(), k);

    for (a, &src) in dups.iter().enumerate() {
        let appended = n + a;
        // The copy is its source's nearest neighbour at exactly 0.0,
        // and vice versa — in the f32 table just like the f64 one.
        assert_eq!(wide.neighbors(src)[0], appended, "source {src}");
        assert_eq!(wide.distances(src)[0], 0.0, "source {src}");
        assert_eq!(wide.neighbors(appended)[0], src, "copy {appended}");
        assert_eq!(wide.distances(appended)[0], 0.0, "copy {appended}");
        assert_eq!(wide64.distances(src)[0], 0.0, "f64 source {src}");
    }
    for i in 0..n {
        let filtered: Vec<usize> = wide
            .neighbors(i)
            .iter()
            .copied()
            .filter(|&j| j < n)
            .collect();
        assert_eq!(
            filtered.as_slice(),
            &base.neighbors(i)[..filtered.len()],
            "row {i}: originals must keep their relative order"
        );
    }
}

/// Tight cluster plus three planted outliers at strictly increasing
/// distances — detector rankings over them have huge margins.
fn graded_outliers() -> (Dataset, [usize; 3]) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut rows: Vec<Vec<f64>> = (0..120)
        .map(|_| (0..4).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let base = rows.len();
    rows.push(vec![5.0, 5.0, 5.0, 5.0]);
    rows.push(vec![10.0, 10.0, 10.0, 10.0]);
    rows.push(vec![20.0, 20.0, 20.0, 20.0]);
    (
        Dataset::from_rows(rows).unwrap(),
        [base, base + 1, base + 2],
    )
}

fn top3(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    idx.truncate(3);
    idx
}

/// Detector-level affine invariance: power-of-two scaling maps scores
/// exactly (LOF is a scale-free ratio; kNN-distance scales linearly),
/// and per-feature shifts leave the graded ranking untouched.
#[test]
fn detector_rankings_are_affine_invariant() {
    let (ds, [o1, o2, o3]) = graded_outliers();
    let scaled = transform_rows(&ds, |_, v| v * 4.0);
    let shifted = transform_rows(&ds, |f, v| v + [10.0, -3.0, 7.5, 100.0][f]);

    let lof = Lof::new(15).unwrap();
    let knnd = KnnDist::new(15).unwrap();

    let lof_base = lof.score_all(&ds.full_matrix());
    assert_eq!(lof_base, lof.score_all(&scaled.full_matrix()));
    assert_eq!(top3(&lof_base), vec![o3, o2, o1]);
    assert_eq!(
        top3(&lof.score_all(&shifted.full_matrix())),
        vec![o3, o2, o1]
    );

    let knnd_base = knnd.score_all(&ds.full_matrix());
    let knnd_scaled = knnd.score_all(&scaled.full_matrix());
    for (b, s) in knnd_base.iter().zip(&knnd_scaled) {
        assert_eq!(*b * 4.0, *s, "kNN-dist must scale exactly by 4");
    }
    assert_eq!(top3(&knnd_base), vec![o3, o2, o1]);
    assert_eq!(
        top3(&knnd.score_all(&shifted.full_matrix())),
        vec![o3, o2, o1]
    );
}
