//! Reconciliation of the process-wide observability layer with the
//! engine's own `RunStats` over an eval grid: the `core.scorer.*`
//! counters increment at exactly the call sites that feed each cell's
//! `evaluations`/`cache_hits` telemetry, so their snapshot delta must
//! equal the column sums *exactly* — any drift means an instrumentation
//! point was added, dropped, or double-counted.
//!
//! This file holds exactly one test: obs counters and the installed
//! subscriber are process-global, and a sibling test running
//! concurrently in the same binary would pollute the deltas.
//! Integration-test files are separate processes, so the rest of the
//! suite cannot interfere.

use anomex_eval::datasets::{TestbedDataset, TestbedFamily};
use anomex_eval::experiment::ExperimentConfig;
use anomex_eval::runner::{run_grid, ResultTable};
use std::sync::Arc;

fn sums(tables: &[&ResultTable]) -> (u64, u64, u64, u64, u64) {
    let cells = tables.iter().flat_map(|t| &t.cells);
    let mut evals = 0u64;
    let mut hits = 0u64;
    let mut live = 0u64;
    let mut skipped = 0u64;
    let mut points = 0u64;
    for c in cells {
        evals += c.evaluations as u64;
        hits += c.cache_hits as u64;
        if c.skipped {
            skipped += 1;
        } else {
            live += 1;
            points += c.n_points as u64;
        }
    }
    (evals, hits, live, skipped, points)
}

#[test]
fn obs_counters_and_spans_reconcile_with_run_stats_over_the_grid() {
    let testbeds = vec![TestbedDataset::build(
        TestbedFamily::Hics(anomex_dataset::gen::hics::HicsPreset::D14),
        42,
        &[],
    )];
    let cfg = ExperimentConfig::fast(42);

    let recorder = Arc::new(anomex_obs::RecordingSubscriber::default());
    anomex_obs::install(Arc::clone(&recorder) as Arc<dyn anomex_obs::Subscriber>);
    let before = anomex_obs::snapshot();

    let point = run_grid("fig9", &testbeds, &cfg.point_pipelines(), &cfg);
    let summary = run_grid("fig10", &testbeds, &cfg.summary_pipelines(), &cfg);

    let delta = anomex_obs::snapshot().counters_since(&before);
    anomex_obs::uninstall();
    let get = |name: &str| delta.get(name).copied().unwrap_or(0);

    let (evals, hits, live, skipped, points) = sums(&[&point, &summary]);
    assert!(evals > 0 && hits > 0, "grid too small to reconcile");
    assert!(live > 0, "every cell was skipped");

    // Scorer work: obs counters increment beside the scorer's own
    // `evaluations`/`cache_hits` atomics that RunStats snapshots.
    assert_eq!(get("core.scorer.evaluations"), evals);
    assert_eq!(get("core.scorer.cache_hits"), hits);

    // Grid accounting: one measured/skipped increment per cell, one
    // engine dim-pass per measured cell (each cell runs one dim), and
    // every point of interest counted once per measured cell.
    assert_eq!(get("eval.grid.cells"), live);
    assert_eq!(get("eval.grid.cells_skipped"), skipped);
    assert_eq!(get("core.engine.dim_passes"), live);
    assert_eq!(get("core.engine.points_explained"), points);
    assert_eq!(get("core.engine.dims_skipped"), 0);

    // Span accounting: every cell opens `eval.grid.cell`, every measured
    // cell one `core.engine.run` + one `core.engine.dim_pass`; the
    // recorder sees a start and an end per span.
    let total_cells = live + skipped;
    assert_eq!(
        recorder.count_named("eval.grid.cell") as u64,
        2 * total_cells
    );
    assert_eq!(recorder.count_named("core.engine.run") as u64, 2 * live);
    assert_eq!(
        recorder.count_named("core.engine.dim_pass") as u64,
        2 * live
    );
}
