//! Crosscheck layer for the unrolled distance/angle kernels: every
//! fast path is proven against the scalar f64 reference on the
//! `golden-6d` fixture (the same construction `tests/golden_grid.rs`
//! pins byte-for-byte).
//!
//! Three tiers of strictness:
//!
//! * **f64 lanes: byte stability.** The unrolled block kernel and the
//!   dot4-batched angle kernel must reproduce the scalar reference to
//!   the last bit — this is what lets the golden artifacts survive the
//!   SIMD rewrite without re-blessing.
//! * **f32 storage: bounded ULP drift.** The f32 path's only error is
//!   one rounding per gathered element, so squared distances must sit
//!   within a small multiple of `f32::EPSILON` *of the operand norms*
//!   (norm-trick cancellation means the bound scales with the norms,
//!   not the distance).
//! * **f32 storage: rank invariance.** Neighbour identities and
//!   detector outlier rankings may differ from f64 only across
//!   f32-resolution ties — on the decisively-separated golden fixture
//!   that means not at all.

use anomex_dataset::{view::dot, Dataset, Subspace};
use anomex_detectors::kernels::{knn_table_blocked, knn_table_blocked_f32, GatheredMatrix};
use anomex_detectors::knn::knn_table_with;
use anomex_detectors::simd::GatheredMatrixF32;
use anomex_detectors::{Detector, FastAbod, KnnDist, Lof, NeighborBackend, Precision};
use anomex_stats::descriptive::OnlineMoments;

/// SplitMix64 — identical to the `golden_grid` fixture's generator.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn jitter(&mut self) -> f64 {
        (self.next_f64() - 0.5) * 0.1
    }
}

/// The `golden-6d` rows: 100 inliers on a jittered cluster lattice plus
/// outliers A/B/C at rows 100–102 (see `tests/golden_grid.rs`).
fn golden_rows() -> Dataset {
    let mut rng = SplitMix64(0x5EED_601D_E421);
    let centers = [0.2, 0.8];
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(103);
    for i in 0..100usize {
        let t = i as f64 / 99.0;
        let b2 = [0, 1, 0, 1][i % 4];
        let b3 = [0, 0, 1, 1][i % 4];
        let b4 = b2 ^ b3;
        rows.push(vec![
            t,
            t,
            centers[b2] + rng.jitter(),
            centers[b3] + rng.jitter(),
            centers[b4] + rng.jitter(),
            rng.next_f64(),
        ]);
    }
    rows.push(vec![
        0.05,
        0.95,
        centers[0] + rng.jitter(),
        centers[0] + rng.jitter(),
        centers[0] + rng.jitter(),
        rng.next_f64(),
    ]);
    rows.push(vec![
        0.95,
        0.05,
        centers[1] + rng.jitter(),
        centers[0] + rng.jitter(),
        centers[1] + rng.jitter(),
        rng.next_f64(),
    ]);
    rows.push(vec![
        0.5,
        0.5,
        centers[1] + rng.jitter(),
        centers[1] + rng.jitter(),
        centers[1] + rng.jitter(),
        rng.next_f64(),
    ]);
    Dataset::from_rows(rows).unwrap()
}

/// Error budget for one f32 rounding per gathered element, folded
/// through a d ≤ 6 norm-trick distance: a comfortable multiple of
/// `f32::EPSILON` against the operand-norm scale.
const F32_ULP_BUDGET: f64 = 32.0 * (f32::EPSILON as f64);

/// The f64 SIMD block kernel is bit-identical to the scalar reference
/// on the golden fixture — in the full 6-d space and in the 2d/3d
/// subspace projections the golden MAP grid actually scans.
#[test]
fn golden_f64_blocks_are_byte_stable() {
    let ds = golden_rows();
    let subspaces = [
        Subspace::new(0usize..6),
        Subspace::new([0usize, 1]),
        Subspace::new([2usize, 3, 4]),
        Subspace::new([1usize, 5]),
        Subspace::single(3),
    ];
    for s in &subspaces {
        let m = ds.project(s);
        let n = m.n_rows();
        let g = GatheredMatrix::new(&m);
        let mut fast = vec![0.0; 8 * n];
        let mut reference = vec![0.0; 8 * n];
        let mut i0 = 0;
        while i0 < n {
            let i1 = (i0 + 8).min(n);
            g.sq_dists_block_into(i0, i1, &mut fast);
            g.sq_dists_block_scalar_into(i0, i1, &mut reference);
            let len = (i1 - i0) * n;
            for (slot, (a, b)) in fast[..len].iter().zip(&reference[..len]).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{s:?} block {i0}..{i1} slot {slot}: {a} vs {b}"
                );
            }
            i0 = i1;
        }
    }
}

/// The dot4-batched angle kernel is bit-identical to the textbook
/// serial Fast ABOD loop over the same neighbour sets.
#[test]
fn golden_angle_kernel_is_byte_stable() {
    let ds = golden_rows();
    let m = ds.full_matrix();
    let k = 10;
    let abod = FastAbod::new(k)
        .unwrap()
        .with_backend(NeighborBackend::Exact);
    let scores = abod.score_all(&m);
    let knn = knn_table_with(&m, k, NeighborBackend::Exact);

    for (p, score) in scores.iter().enumerate() {
        let rp = m.row(p);
        let diffs: Vec<Vec<f64>> = knn
            .neighbors(p)
            .iter()
            .map(|&o| m.row(o).iter().zip(rp).map(|(a, b)| a - b).collect())
            .collect();
        let norms: Vec<f64> = diffs.iter().map(|v| dot(v, v)).collect();
        let mut moments = OnlineMoments::new();
        for i in 0..diffs.len() {
            if norms[i] == 0.0 {
                continue;
            }
            for j in i + 1..diffs.len() {
                if norms[j] == 0.0 {
                    continue;
                }
                moments.push(dot(&diffs[i], &diffs[j]) / (norms[i] * norms[j]));
            }
        }
        let var = if moments.count() < 2 {
            1e6
        } else {
            moments.population_variance()
        };
        let want = -(var.max(1e-300)).ln();
        assert_eq!(
            score.to_bits(),
            want.to_bits(),
            "point {p}: {score} vs {want}"
        );
    }
}

/// f32 squared distances track the f64 kernel within the single-
/// precision ULP budget on every golden block.
#[test]
fn golden_f32_distances_stay_within_ulp_budget() {
    let ds = golden_rows();
    let m = ds.full_matrix();
    let n = m.n_rows();
    let g64 = GatheredMatrix::new(&m);
    let g32 = GatheredMatrixF32::new(&m);
    let mut wide = vec![0.0; 8 * n];
    let mut narrow = vec![0.0; 8 * n];
    let mut i0 = 0;
    while i0 < n {
        let i1 = (i0 + 8).min(n);
        g64.sq_dists_block_into(i0, i1, &mut wide);
        g32.sq_dists_block_into(i0, i1, &mut narrow);
        for bi in 0..(i1 - i0) {
            for j in 0..n {
                let a = wide[bi * n + j];
                let b = narrow[bi * n + j];
                let scale = g64.sq_norms()[i0 + bi] + g64.sq_norms()[j] + 1.0;
                assert!(
                    (a - b).abs() <= F32_ULP_BUDGET * scale,
                    "({},{j}): {a} vs {b} (budget {})",
                    i0 + bi,
                    F32_ULP_BUDGET * scale
                );
            }
        }
        i0 = i1;
    }
}

/// On the decisively-separated golden fixture the f32 kNN table agrees
/// with the f64 table on every neighbour identity, and distances agree
/// to single precision.
#[test]
fn golden_f32_knn_ranks_match_f64() {
    let ds = golden_rows();
    let m = ds.full_matrix();
    let k = 10;
    let wide = knn_table_blocked(&m, k);
    let narrow = knn_table_blocked_f32(&m, k);
    assert_eq!(wide.k(), narrow.k());
    for i in 0..m.n_rows() {
        assert_eq!(wide.neighbors(i), narrow.neighbors(i), "row {i}");
        for (a, b) in wide.distances(i).iter().zip(narrow.distances(i)) {
            assert!((a - b).abs() <= 1e-5 * a.max(1.0), "row {i}: {a} vs {b}");
        }
    }
}

/// Detector-level agreement: for LOF, kNN-distance and Fast ABOD the
/// f32 scores track f64 closely, and every score pair the f64 run
/// separates by more than working-precision noise keeps its order
/// under f32 — outlier rankings are precision-invariant.
#[test]
fn golden_detector_rankings_are_precision_invariant() {
    let ds = golden_rows();
    let m = ds.full_matrix();
    let detectors: Vec<(&str, Vec<f64>, Vec<f64>)> = vec![
        (
            "lof",
            Lof::new(10).unwrap().score_all(&m),
            Lof::new(10)
                .unwrap()
                .with_precision(Precision::F32)
                .score_all(&m),
        ),
        (
            "knndist",
            KnnDist::new(10).unwrap().score_all(&m),
            KnnDist::new(10)
                .unwrap()
                .with_precision(Precision::F32)
                .score_all(&m),
        ),
        (
            "fastabod",
            FastAbod::new(10).unwrap().score_all(&m),
            FastAbod::new(10)
                .unwrap()
                .with_precision(Precision::F32)
                .score_all(&m),
        ),
    ];
    for (name, wide, narrow) in &detectors {
        assert_eq!(wide.len(), narrow.len(), "{name}");
        for (i, (a, b)) in wide.iter().zip(narrow).enumerate() {
            assert!(
                (a - b).abs() <= 1e-4 * a.abs().max(1.0),
                "{name} row {i}: {a} vs {b}"
            );
        }
        for i in 0..wide.len() {
            for j in (i + 1)..wide.len() {
                let margin = (wide[i] - wide[j]).abs();
                if margin > 1e-3 * wide[i].abs().max(1.0) {
                    assert_eq!(
                        wide[i] > wide[j],
                        narrow[i] > narrow[j],
                        "{name}: rows {i}/{j} flipped order under f32 \
                         despite an f64 margin of {margin}"
                    );
                }
            }
        }
    }
}
