//! Golden regression test: the eval runner's MAP grid over a fixed
//! hand-built testbed must reproduce `tests/golden/map_grid.txt`
//! byte-for-byte.
//!
//! The fixture (`golden-6d`) plants three outliers whose explanations
//! are decisively unambiguous (every winning subspace leads its
//! runner-up by > 3 standardized-score units, so no floating-point
//! reordering can flip a rank):
//!
//! * **A** (row 100) and **B** (row 101) break the tight `{0,1}`
//!   diagonal from opposite corners while conforming everywhere else.
//! * **C** (row 102) sits at the *odd-parity* corner of an XOR cluster
//!   construction over `{2,3,4}`: inliers occupy only the four
//!   even-parity corners, so every **pair** projection of C lands in a
//!   legitimate cluster — only the full triple exposes it.
//!
//! Ground truth adds a decoy (`B: {2,3}`) that no explainer finds, so
//! the expected MAP values (0.75 at 2d, 1.00 at 3d) exercise the
//! Average-Precision math, not just perfect scores.
//!
//! Regenerate after an intentional behavior change with
//! `scripts/regen_golden.sh` (or `GOLDEN_BLESS=1 cargo test --test
//! golden_grid`) and review the diff like any other code change.

use anomex::prelude::*;
use anomex_dataset::{Dataset, GroundTruth, Subspace};
use anomex_eval::datasets::{CustomFamily, TestbedDataset};
use anomex_eval::experiment::ExperimentConfig;
use anomex_eval::report;
use anomex_eval::runner::run_grid;
use std::path::PathBuf;

/// SplitMix64 — the fixture's only randomness, pinned here so the data
/// is identical on every platform and toolchain.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform jitter in `[-0.05, 0.05)`.
    fn jitter(&mut self) -> f64 {
        (self.next_f64() - 0.5) * 0.1
    }
}

const GOLDEN_FAMILY: CustomFamily = CustomFamily {
    name: "golden-6d",
    n_features: 6,
    dims: &[2, 3],
};

/// Builds the `golden-6d` fixture: 100 inliers plus outliers A/B/C at
/// rows 100/101/102 (see the module docs for the construction).
fn golden_testbed() -> TestbedDataset {
    let mut rng = SplitMix64(0x5EED_601D_E421);
    let centers = [0.2, 0.8];
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(103);
    for i in 0..100usize {
        let t = i as f64 / 99.0;
        let b2 = [0, 1, 0, 1][i % 4];
        let b3 = [0, 0, 1, 1][i % 4];
        let b4 = b2 ^ b3;
        rows.push(vec![
            t,
            t,
            centers[b2] + rng.jitter(),
            centers[b3] + rng.jitter(),
            centers[b4] + rng.jitter(),
            rng.next_f64(),
        ]);
    }
    // A: breaks the {0,1} diagonal; even-parity cluster (0,0,0) elsewhere.
    rows.push(vec![
        0.05,
        0.95,
        centers[0] + rng.jitter(),
        centers[0] + rng.jitter(),
        centers[0] + rng.jitter(),
        rng.next_f64(),
    ]);
    // B: breaks {0,1} from the opposite corner; cluster (1,1,0).
    rows.push(vec![
        0.95,
        0.05,
        centers[1] + rng.jitter(),
        centers[1] + rng.jitter(),
        centers[0] + rng.jitter(),
        rng.next_f64(),
    ]);
    // C: on the diagonal; odd-parity corner (0,0,1) of {2,3,4}.
    rows.push(vec![
        0.525,
        0.525,
        centers[0] + rng.jitter(),
        centers[0] + rng.jitter(),
        centers[1] + rng.jitter(),
        rng.next_f64(),
    ]);

    let dataset = Dataset::from_rows(rows).expect("valid fixture rows");
    let mut gt = GroundTruth::new();
    gt.add(100, Subspace::new([0usize, 1]));
    gt.add(101, Subspace::new([0usize, 1]));
    gt.add(101, Subspace::new([2usize, 3])); // decoy: halves B's AP
    gt.add(102, Subspace::new([2usize, 3, 4]));
    TestbedDataset::from_parts(GOLDEN_FAMILY, dataset, gt)
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("map_grid.txt")
}

#[test]
fn map_grid_matches_golden_file() {
    let tb = golden_testbed();
    let cfg = ExperimentConfig::fast(42);
    let pipelines = vec![
        Pipeline::point(
            Lof::new(15).unwrap(),
            Beam::new().beam_width(10).result_size(1),
        ),
        Pipeline::summary(Lof::new(15).unwrap(), LookOut::new().budget(1)),
    ];

    let table = run_grid("golden", &[tb], &pipelines, &cfg);
    let rendered = report::map_grid(&table);

    let path = golden_path();
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::write(&path, &rendered).expect("write golden file");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).expect("read tests/golden/map_grid.txt");
    assert_eq!(
        rendered,
        expected,
        "map grid diverged from {} — if the change is intentional, \
         regenerate with scripts/regen_golden.sh and review the diff",
        path.display()
    );
}

/// The same grid, but with every pipeline built from a canonical
/// `PipelineSpec` string instead of hand-chained builders: output must
/// stay byte-identical to the golden file. This is the contract that
/// lets eval and serve declare pipelines as data.
#[test]
fn map_grid_built_from_specs_is_byte_identical() {
    let tb = golden_testbed();
    let cfg = ExperimentConfig::fast(42);
    let pipelines: Vec<Pipeline> = ["beam:width=10,results=1+lof:k=15", "lookout:budget=1+lof"]
        .iter()
        .map(|compact| {
            let spec = anomex::spec::PipelineSpec::parse(compact).expect("golden spec parses");
            Pipeline::from_spec(&spec).expect("golden spec builds")
        })
        .collect();

    let table = run_grid("golden", &[tb], &pipelines, &cfg);
    let rendered = report::map_grid(&table);
    let expected = std::fs::read_to_string(golden_path()).expect("read tests/golden/map_grid.txt");
    assert_eq!(
        rendered, expected,
        "spec-built pipelines must reproduce the golden grid byte-for-byte"
    );
}

/// The kd-tree neighbor backend must be an *exact* drop-in: the same
/// grid run with `backend=kdtree` on every kNN-backed detector renders
/// byte-identically to the committed golden file. This is the contract
/// that lets `NeighborBackend::Auto` switch backends by shape without
/// perturbing any committed result.
#[test]
fn map_grid_under_kdtree_backend_is_byte_identical() {
    let tb = golden_testbed();
    let cfg = ExperimentConfig::fast(42);
    let pipelines = vec![
        Pipeline::point(
            Lof::new(15).unwrap().with_backend(NeighborBackend::KdTree),
            Beam::new().beam_width(10).result_size(1),
        ),
        Pipeline::summary(
            Lof::new(15).unwrap().with_backend(NeighborBackend::KdTree),
            LookOut::new().budget(1),
        ),
    ];
    let table = run_grid("golden", &[tb], &pipelines, &cfg);
    let rendered = report::map_grid(&table);
    let expected = std::fs::read_to_string(golden_path()).expect("read tests/golden/map_grid.txt");
    assert_eq!(
        rendered, expected,
        "the kd-tree backend must reproduce the exact golden grid byte-for-byte"
    );

    // The same guarantee through the spec grammar's backend parameter.
    let spec_pipelines: Vec<Pipeline> = [
        "beam:width=10,results=1+lof:k=15,backend=kdtree",
        "lookout:budget=1+lof:backend=kd",
    ]
    .iter()
    .map(|compact| {
        let spec = anomex::spec::PipelineSpec::parse(compact).expect("backend spec parses");
        Pipeline::from_spec(&spec).expect("backend spec builds")
    })
    .collect();
    let table = run_grid("golden", &[golden_testbed()], &spec_pipelines, &cfg);
    assert_eq!(
        report::map_grid(&table),
        expected,
        "spec-declared kdtree backend must reproduce the golden grid"
    );
}

/// The approximate (LSH) backend guards small inputs: below its
/// row-count floor it falls back to the exact kernel, so on the 103-row
/// golden fixture `backend=approx` renders byte-identically too — the
/// MAP drift against exact is *zero by construction* here. (Drift on
/// above-floor inputs is measured and recorded in EXPERIMENTS.md.)
#[test]
fn map_grid_under_approx_backend_falls_back_to_exact_below_floor() {
    assert!(
        golden_testbed().dataset.n_rows() < NeighborBackend::APPROX_MIN_ROWS,
        "fixture must sit below the approx floor for this test's premise"
    );
    let tb = golden_testbed();
    let cfg = ExperimentConfig::fast(42);
    let pipelines = vec![
        Pipeline::point(
            Lof::new(15).unwrap().with_backend(NeighborBackend::Approx),
            Beam::new().beam_width(10).result_size(1),
        ),
        Pipeline::summary(
            Lof::new(15).unwrap().with_backend(NeighborBackend::Approx),
            LookOut::new().budget(1),
        ),
    ];
    let table = run_grid("golden", &[tb], &pipelines, &cfg);
    let rendered = report::map_grid(&table);
    let expected = std::fs::read_to_string(golden_path()).expect("read tests/golden/map_grid.txt");
    assert_eq!(
        rendered, expected,
        "below the row floor the approx backend must serve exact results"
    );
}

/// The fixture's explanations are exact, so the MAP values are exact
/// binary fractions — pin them directly too, independent of rendering.
#[test]
fn golden_cells_have_exact_map_values() {
    let tb = golden_testbed();
    let cfg = ExperimentConfig::fast(42);
    let pipelines = vec![
        Pipeline::point(
            Lof::new(15).unwrap(),
            Beam::new().beam_width(10).result_size(1),
        ),
        Pipeline::summary(Lof::new(15).unwrap(), LookOut::new().budget(1)),
    ];
    let table = run_grid("golden", &[tb], &pipelines, &cfg);
    assert_eq!(table.cells.len(), 4);
    for cell in &table.cells {
        assert!(!cell.skipped, "{}d cell skipped", cell.dim);
        // 2d: A scores 1.0, B 0.5 (decoy) → MAP 0.75. 3d: C alone → 1.0.
        let want = if cell.dim == 2 { 0.75 } else { 1.0 };
        assert_eq!(
            cell.map, want,
            "{}+{} at {}d",
            cell.explainer, cell.detector, cell.dim
        );
        assert_eq!(cell.n_points, if cell.dim == 2 { 2 } else { 1 });
    }
}
