//! Shape-level reproduction tests: the paper's headline *qualitative*
//! findings must hold on the regenerated testbed, at smoke-test scale.
//!
//! These are the load-bearing claims of §4; each test pins one of them.

use anomex_dataset::gen::fullspace::FullSpacePreset;
use anomex_dataset::gen::hics::HicsPreset;
use anomex_eval::datasets::{TestbedDataset, TestbedFamily};
use anomex_eval::experiment::ExperimentConfig;
use anomex_eval::runner::run_cell;

fn cfg() -> ExperimentConfig {
    ExperimentConfig::fast(42)
}

fn breast_like() -> TestbedDataset {
    TestbedDataset::build(
        TestbedFamily::FullSpace(FullSpacePreset::BreastA),
        42,
        &[2, 3],
    )
}

fn d14() -> TestbedDataset {
    TestbedDataset::build(TestbedFamily::Hics(HicsPreset::D14), 42, &[])
}

/// §4.1: "Beam with LOF retrieves the optimal subspace for every outlier
/// point (MAP = 1) [on real-world datasets] ... the effectiveness of
/// Beam with Fast ABOD and iForest is significantly lower."
#[test]
fn fullspace_beam_lof_dominates_other_detectors() {
    let tb = breast_like();
    let c = cfg();
    let pipes = c.point_pipelines();
    let lof = run_cell(&tb, &pipes[0], 2, &c); // Beam+LOF
    let abod = run_cell(&tb, &pipes[1], 2, &c); // Beam+FastABOD
    let forest = run_cell(&tb, &pipes[2], 2, &c); // Beam+iForest
    assert!(lof.map > 0.9, "Beam+LOF MAP = {}", lof.map);
    assert!(
        lof.map > abod.map + 0.3 && lof.map > forest.map + 0.3,
        "LOF {} vs ABOD {} vs iForest {}",
        lof.map,
        abod.map,
        forest.map
    );
}

/// §4.1: "RefOut seems to have very low MAP [on real-world datasets]
/// regardless of the employed detector."
#[test]
fn fullspace_refout_is_weak() {
    let tb = breast_like();
    let c = cfg();
    let pipes = c.point_pipelines();
    let beam_lof = run_cell(&tb, &pipes[0], 2, &c);
    let refout_lof = run_cell(&tb, &pipes[3], 2, &c);
    assert!(
        refout_lof.map < beam_lof.map - 0.3,
        "RefOut {} should trail Beam {} clearly",
        refout_lof.map,
        beam_lof.map
    );
}

/// §4.2: "HiCS has poor MAP [on real-world datasets] regardless of the
/// explanation dimensionality or the detector used" — there are no
/// correlated relevant subspaces for the contrast heuristic to find.
#[test]
fn fullspace_hics_near_zero() {
    let tb = breast_like();
    let c = cfg();
    let pipes = c.summary_pipelines();
    for pipe in &pipes[3..] {
        // HiCS_FX × 3 detectors
        let cell = run_cell(&tb, pipe, 2, &c);
        assert!(
            cell.map < 0.25,
            "{}: MAP = {} (expected near zero on full-space data)",
            pipe.label(),
            cell.map
        );
    }
}

/// §4.2: "Starting from 14 dimensions, HiCS and LookOut with LOF achieve
/// optimal MAP regardless of the explanation dimensionality."
#[test]
fn synthetic_14d_summarizers_with_lof_are_optimal() {
    let tb = d14();
    let c = cfg();
    let pipes = c.summary_pipelines();
    for dim in [2usize, 3] {
        let lookout = run_cell(&tb, &pipes[0], dim, &c);
        assert!(lookout.map > 0.9, "LookOut+LOF at {dim}d: {}", lookout.map);
        let hics = run_cell(&tb, &pipes[3], dim, &c);
        assert!(hics.map > 0.9, "HiCS+LOF at {dim}d: {}", hics.map);
    }
}

/// §4.3: RefOut's runtime is flat in explanation dimensionality while
/// Beam's grows with it (the core efficiency trade-off of Figure 11).
#[test]
fn refout_runtime_flat_beam_runtime_grows() {
    let tb = d14();
    let c = cfg();
    let pipes = c.point_pipelines();
    let beam_2d = run_cell(&tb, &pipes[0], 2, &c);
    let beam_4d = run_cell(&tb, &pipes[0], 4, &c);
    let refout_2d = run_cell(&tb, &pipes[3], 2, &c);
    let refout_4d = run_cell(&tb, &pipes[3], 4, &c);
    assert!(
        beam_4d.evaluations > 2 * beam_2d.evaluations,
        "Beam evals: {} -> {}",
        beam_2d.evaluations,
        beam_4d.evaluations
    );
    let ratio = refout_4d.evaluations as f64 / refout_2d.evaluations.max(1) as f64;
    assert!(
        ratio < 1.5,
        "RefOut evals should stay flat: {} -> {}",
        refout_2d.evaluations,
        refout_4d.evaluations
    );
}

/// Table 1 invariant behind Table 2's columns: the summarizer regime
/// (many outliers per subspace) holds on synthetic data, the
/// point-explanation regime (≈1 outlier per subspace) on full-space
/// data.
#[test]
fn outliers_per_subspace_regimes() {
    let syn = d14();
    assert!((syn.ground_truth.mean_outliers_per_subspace() - 5.0).abs() < 1e-9);
    let real = breast_like();
    assert!(real.ground_truth.mean_outliers_per_subspace() < 1.5);
}
