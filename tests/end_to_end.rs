//! Cross-crate integration tests: every detector × explainer pipeline
//! recovers planted ground truth end-to-end on the generated testbeds.

use anomex::prelude::*;
use anomex_eval::datasets::{TestbedDataset, TestbedFamily};
use anomex_eval::experiment::ExperimentConfig;
use anomex_eval::runner::run_cell;

fn d14() -> TestbedDataset {
    TestbedDataset::build(
        TestbedFamily::Hics(anomex_dataset::gen::hics::HicsPreset::D14),
        42,
        &[],
    )
}

#[test]
fn beam_lof_recovers_2d_block_with_perfect_map() {
    let tb = d14();
    let cfg = ExperimentConfig::fast(42);
    let pipes = cfg.point_pipelines();
    let beam_lof = &pipes[0];
    assert_eq!(beam_lof.label(), "Beam_FX+LOF");
    let cell = run_cell(&tb, beam_lof, 2, &cfg);
    assert!(!cell.skipped);
    assert!(
        cell.map > 0.9,
        "Beam+LOF on the easy 2d regime should be near-perfect, got {}",
        cell.map
    );
}

#[test]
fn lookout_lof_summarizes_2d_block_with_perfect_map() {
    let tb = d14();
    let cfg = ExperimentConfig::fast(42);
    let pipes = cfg.summary_pipelines();
    let lookout_lof = &pipes[0];
    assert_eq!(lookout_lof.label(), "LookOut+LOF");
    let cell = run_cell(&tb, lookout_lof, 2, &cfg);
    assert!(cell.map > 0.9, "LookOut+LOF MAP = {}", cell.map);
}

#[test]
fn all_twelve_pipelines_run_end_to_end() {
    let tb = d14();
    let cfg = ExperimentConfig::fast(42);
    for pipe in cfg.point_pipelines().iter().chain(&cfg.summary_pipelines()) {
        let cell = run_cell(&tb, pipe, 2, &cfg);
        assert!(!cell.skipped, "{} skipped", pipe.label());
        assert!(cell.n_points > 0, "{}", pipe.label());
        assert!((0.0..=1.0).contains(&cell.map), "{}", pipe.label());
        assert!(cell.seconds > 0.0, "{}", pipe.label());
    }
}

#[test]
fn pipelines_are_deterministic_end_to_end() {
    let tb = d14();
    let cfg = ExperimentConfig::fast(42);
    let pipes = cfg.point_pipelines();
    let a = run_cell(&tb, &pipes[0], 3, &cfg);
    let b = run_cell(&tb, &pipes[0], 3, &cfg);
    assert_eq!(a.map, b.map);
    assert_eq!(a.mean_recall, b.mean_recall);
    assert_eq!(a.evaluations, b.evaluations);
}

#[test]
fn explanations_respect_requested_dimensionality() {
    let g = generate_hics(HicsPreset::D23, 3);
    let lof = Lof::new(15).unwrap();
    let scorer = SubspaceScorer::new(&g.dataset, &lof);
    let point = g.ground_truth.outliers()[0];
    for dim in 2..=4 {
        let beam = Beam::new().beam_width(10).explain(&scorer, point, dim);
        assert!(beam.entries().iter().all(|(s, _)| s.dim() == dim));
        let refout = RefOut::new().pool_size(20).explain(&scorer, point, dim);
        assert!(refout.entries().iter().all(|(s, _)| s.dim() == dim));
    }
}

#[test]
fn summary_and_point_explainers_agree_on_easy_block() {
    // On the trivially-visible 2d block, Beam (per point) and LookOut
    // (set-level) must both converge on the ground-truth subspace.
    let g = generate_hics(HicsPreset::D14, 9);
    let lof = Lof::new(15).unwrap();
    let scorer = SubspaceScorer::new(&g.dataset, &lof);
    let pois = g.ground_truth.points_explained_at_dim(2);
    let truth = g.blocks.iter().find(|b| b.dim() == 2).unwrap();

    let summary = LookOut::new().budget(3).summarize(&scorer, &pois, 2);
    assert_eq!(summary.best(), Some(truth));

    for &p in &pois {
        let expl = Beam::new().beam_width(10).explain(&scorer, p, 2);
        assert_eq!(expl.best(), Some(truth), "point {p}");
    }
}

#[test]
fn fullspace_pipeline_matches_derived_truth() {
    // Derive ground truth at 2d by exhaustive LOF, then check Beam+LOF
    // reproduces it — by construction Beam's exhaustive 2d stage must
    // find the same argmax subspace.
    let tb = TestbedDataset::build(TestbedFamily::FullSpace(FullSpacePreset::BreastA), 42, &[2]);
    let lof = Lof::new(15).unwrap();
    let scorer = SubspaceScorer::new(&tb.dataset, &lof);
    for &p in tb.ground_truth.outliers().iter().take(5) {
        let truth = &tb.ground_truth.relevant_for(p)[0];
        let expl = Beam::new().explain(&scorer, p, 2);
        assert_eq!(expl.best(), Some(truth), "point {p}");
    }
}

#[test]
fn csv_round_trip_preserves_pipeline_results() {
    // Export a generated dataset to CSV, reload, and verify scoring is
    // bit-identical — the persistence path users will actually take.
    let g = generate_hics(HicsPreset::D14, 5);
    let mut buf = Vec::new();
    anomex_dataset::csv::write_csv(&g.dataset, &mut buf).unwrap();
    let reloaded = anomex_dataset::csv::read_csv(&buf[..], true).unwrap();
    let lof = Lof::new(15).unwrap();
    let block = &g.blocks[0];
    let a = lof.score_all(&g.dataset.project(block));
    let b = lof.score_all(&reloaded.project(block));
    assert_eq!(a, b);
}
