//! Determinism guarantees of the [`ExplanationEngine`] run path: neither
//! per-point parallelism nor cache reuse may change a single ranking.
//!
//! The paper's evaluation depends on this — MAP curves are only
//! comparable across pipelines if the engine's execution policy
//! (parallel fan-out, warm caches shared across dimensionalities) is
//! invisible in the results.

use anomex::prelude::*;
use anomex_core::pipeline::ExplainerKind;
use anomex_eval::datasets::{TestbedDataset, TestbedFamily};
use anomex_eval::experiment::ExperimentConfig;
use anomex_eval::runner::{run_grid, ResultTable};
use std::sync::Arc;

fn d14() -> TestbedDataset {
    TestbedDataset::build(
        TestbedFamily::Hics(anomex_dataset::gen::hics::HicsPreset::D14),
        42,
        &[],
    )
}

fn beam() -> ExplainerKind {
    ExplainerKind::Point(Box::new(Beam::new()))
}

#[test]
fn parallel_points_match_serial_points_exactly() {
    let g = generate_hics(HicsPreset::D14, 42);
    let lof = Lof::new(15).unwrap();
    let pois = g.ground_truth.points_explained_at_dim(2);
    assert!(
        pois.len() > 1,
        "need several points to exercise the fan-out"
    );

    let par = ExplanationEngine::new(&g.dataset, &lof)
        .run(&beam(), &RunSpec::new(pois.clone(), [2usize, 3]));
    let ser = ExplanationEngine::new(&g.dataset, &lof).run(
        &beam(),
        &RunSpec::new(pois, [2usize, 3]).sequential_points(),
    );

    for (p, s) in par.dims.iter().zip(&ser.dims) {
        assert_eq!(p.dim, s.dim);
        assert_eq!(
            p.explanations, s.explanations,
            "rankings diverged at {}d",
            p.dim
        );
        assert_eq!(
            p.stats.evaluations, s.stats.evaluations,
            "{}d evaluations",
            p.dim
        );
        assert_eq!(
            p.stats.cache_hits, s.stats.cache_hits,
            "{}d cache hits",
            p.dim
        );
    }
}

#[test]
fn warm_cache_matches_fresh_cache_exactly() {
    let g = generate_hics(HicsPreset::D14, 42);
    let lof = Lof::new(15).unwrap();
    let pois = g.ground_truth.points_explained_at_dim(2);
    let spec = RunSpec::new(pois, [2usize, 3]);

    let fresh = ExplanationEngine::new(&g.dataset, &lof).run(&beam(), &spec);

    // Warm an external cache with a full sweep, then rerun on it.
    let cache = Arc::new(ScoreCache::new());
    let engine = ExplanationEngine::with_cache(&g.dataset, &lof, Arc::clone(&cache));
    let _ = engine.run(&beam(), &spec);
    let warmed = engine.run(&beam(), &spec);

    for (f, w) in fresh.dims.iter().zip(&warmed.dims) {
        assert_eq!(
            f.explanations, w.explanations,
            "warm cache changed {}d rankings",
            f.dim
        );
    }
    assert_eq!(
        warmed.total_evaluations(),
        0,
        "warmed run must be served from cache"
    );
    assert!(warmed.total_cache_hits() > 0);
}

#[test]
fn dim_sweep_spends_strictly_fewer_evaluations_than_independent_runs() {
    let g = generate_hics(HicsPreset::D14, 42);
    let lof = Lof::new(15).unwrap();
    let pois = g.ground_truth.points_explained_at_dim(2);

    let sweep = ExplanationEngine::new(&g.dataset, &lof)
        .run(&beam(), &RunSpec::new(pois.clone(), [2usize, 3]));
    let solo2 = ExplanationEngine::new(&g.dataset, &lof)
        .run(&beam(), &RunSpec::new(pois.clone(), [2usize]));
    let solo3 =
        ExplanationEngine::new(&g.dataset, &lof).run(&beam(), &RunSpec::new(pois, [3usize]));

    assert!(
        sweep.total_evaluations() < solo2.total_evaluations() + solo3.total_evaluations(),
        "sweep spent {} evaluations, independent runs {} + {}",
        sweep.total_evaluations(),
        solo2.total_evaluations(),
        solo3.total_evaluations()
    );
    assert!(
        sweep.dims[1].stats.cache_hits > 0,
        "the 3d pass must reuse subspaces the 2d pass scored"
    );
    // And the shared cache never changes what comes out.
    assert_eq!(sweep.dims[0].explanations, solo2.dims[0].explanations);
    assert_eq!(sweep.dims[1].explanations, solo3.dims[0].explanations);
}

#[test]
fn pipeline_wrapper_is_equivalent_to_the_engine() {
    let g = generate_hics(HicsPreset::D14, 42);
    let pois = g.ground_truth.points_explained_at_dim(2);
    let pipe = Pipeline::point(Lof::new(15).unwrap(), Beam::new());

    let out = pipe.run(&g.dataset, &pois, 2);
    let direct = pipe
        .engine(&g.dataset)
        .run(pipe.explainer(), &RunSpec::new(pois.as_slice(), [2usize]))
        .into_single();

    assert_eq!(out.explanations, direct.explanations);
    assert_eq!(out.subspace_evaluations, direct.stats.evaluations);
    assert_eq!(out.cache_hits, direct.stats.cache_hits);
}

/// Wall time is the only nondeterministic cell field; zero it so two
/// grids can be compared as JSON.
fn zero_seconds(mut t: ResultTable) -> ResultTable {
    for c in &mut t.cells {
        c.seconds = 0.0;
    }
    t
}

/// The observability layer must be provably inert: running the same
/// grid with no subscriber, with [`NoopSubscriber`] installed, and with
/// a recording subscriber installed yields byte-identical result JSON.
/// Only wall time may differ (zeroed, as everywhere in this file).
///
/// [`NoopSubscriber`]: anomex_obs::NoopSubscriber
#[test]
fn observability_subscribers_are_inert() {
    let tb = vec![d14()];
    let cfg = ExperimentConfig::fast(42);
    let pipes: Vec<_> = cfg.point_pipelines().into_iter().take(1).collect();

    let baseline = zero_seconds(run_grid("obs", &tb, &pipes, &cfg)).to_json();

    anomex_obs::install(Arc::new(anomex_obs::NoopSubscriber));
    let noop = zero_seconds(run_grid("obs", &tb, &pipes, &cfg)).to_json();
    anomex_obs::uninstall();

    let recorder = Arc::new(anomex_obs::RecordingSubscriber::default());
    anomex_obs::install(Arc::clone(&recorder) as Arc<dyn anomex_obs::Subscriber>);
    let recorded = zero_seconds(run_grid("obs", &tb, &pipes, &cfg)).to_json();
    anomex_obs::uninstall();

    assert_eq!(baseline, noop, "NoopSubscriber changed grid results");
    assert_eq!(
        baseline, recorded,
        "RecordingSubscriber changed grid results"
    );
    // The recorder really was live for the third run — instrumentation
    // was exercised, not skipped.
    assert!(
        recorder.count_named("core.engine.run") > 0,
        "recorder saw no engine spans"
    );
}

#[test]
fn grid_runs_are_bit_identical_as_json() {
    let tb = vec![d14()];
    let cfg = ExperimentConfig::fast(42);
    // One pipeline (Beam+LOF) keeps the test fast while still sweeping
    // every dimensionality through one shared cache.
    let pipes: Vec<_> = cfg.point_pipelines().into_iter().take(1).collect();

    let a = zero_seconds(run_grid("det", &tb, &pipes, &cfg));
    let b = zero_seconds(run_grid("det", &tb, &pipes, &cfg));

    assert_eq!(a.to_json(), b.to_json(), "grid output must be reproducible");
    // The sweep's cache sharing is visible in the telemetry: some later
    // dimensionality reports hits against entries of an earlier one.
    assert!(
        a.cells.iter().any(|c| !c.skipped && c.cache_hits > 0),
        "no cell reported cache hits"
    );
}
