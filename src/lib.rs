//! # anomex — detector-agnostic outlier explanation
//!
//! A Rust implementation of the algorithms and benchmarking framework of
//! **"A Comparative Evaluation of Anomaly Explanation Algorithms"**
//! (Myrtakis, Christophides, Simon — EDBT 2021): given a multivariate
//! dataset and a set of outliers, find the feature **subspaces** that
//! best *explain* why those points are outlying.
//!
//! The workspace provides:
//!
//! * three unsupervised **outlier detectors** — LOF, Fast ABOD, Isolation
//!   Forest ([`detectors`]);
//! * two **point explainers** — Beam and RefOut — ranking subspaces per
//!   individual outlier, and two **explanation summarizers** — LookOut
//!   and HiCS — ranking subspaces for a whole outlier set ([`core`]);
//! * the statistical substrate they need — Welch's t-test,
//!   Kolmogorov–Smirnov, Student-t / normal distributions ([`stats`]);
//! * dataset handling, subspace algebra and the paper's synthetic
//!   testbed generators ([`dataset`]);
//! * the evaluation framework — MAP / Mean Recall metrics, pipelines,
//!   and the harness regenerating every table and figure of the paper
//!   ([`eval`]);
//! * a serving layer — a fitted-model registry and a micro-batching
//!   JSON-lines explanation service ([`serve`]).
//!
//! ## Quickstart
//!
//! ```
//! use anomex::prelude::*;
//!
//! // Generate a paper testbed dataset with planted subspace outliers.
//! let g = generate_hics(HicsPreset::D14, 42);
//! let outlier = g.ground_truth.outliers()[0];
//!
//! // Explain it: which 2d feature pair makes it anomalous?
//! let lof = Lof::new(15).unwrap();
//! let scorer = SubspaceScorer::new(&g.dataset, &lof);
//! let explanation = Beam::new().explain(&scorer, outlier, 2);
//!
//! println!("{} is best explained by {}", outlier, explanation.best().unwrap());
//! ```
//!
//! See the `examples/` directory for richer scenarios (sensor-fault
//! diagnosis, intrusion summarization, detector comparison) and the
//! `anomex-eval` binary for the full experiment harness.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use anomex_core as core;
pub use anomex_dataset as dataset;
pub use anomex_detectors as detectors;
pub use anomex_eval as eval;
pub use anomex_serve as serve;
pub use anomex_spec as spec;
pub use anomex_stats as stats;

/// One-stop imports for the common workflow: generate/load data → pick a
/// detector → build an [`ExplanationEngine`](anomex_core::engine::ExplanationEngine)
/// → explain or summarize outliers.
pub mod prelude {
    pub use anomex_core::cache::{CacheStats, ScoreCache};
    pub use anomex_core::engine::{DimRun, EngineRun, ExplanationEngine, RunSpec, RunStats};
    pub use anomex_core::explainer::{PointExplainer, RankedSubspaces, SummaryExplainer};
    pub use anomex_core::pipeline::{ExplainerKind, Pipeline, PipelineOutput};
    pub use anomex_core::scoring::SubspaceScorer;
    pub use anomex_core::surrogate::{Surrogate, SurrogateModel};
    pub use anomex_core::{Beam, Hics, LookOut, RefOut};
    pub use anomex_dataset::gen::fullspace::{generate_fullspace_with_outliers, FullSpacePreset};
    pub use anomex_dataset::gen::hics::{generate_hics, HicsPreset};
    pub use anomex_dataset::{Dataset, GroundTruth, Subspace};
    pub use anomex_detectors::{Detector, FastAbod, IsolationForest, KnnDist, Loda, Lof};
    pub use anomex_spec::NeighborBackend;
}

#[cfg(test)]
mod unit_tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_workflow() {
        let g = generate_hics(HicsPreset::D14, 1);
        let lof = Lof::new(15).unwrap();
        let scorer = SubspaceScorer::new(&g.dataset, &lof);
        let outlier = g.ground_truth.outliers()[0];
        let ranked = Beam::new().explain(&scorer, outlier, 2);
        assert!(!ranked.is_empty());
    }
}
