//! Industrial-monitoring scenario (the paper's §1 motivation): a plant
//! records correlated sensor channels; a fault breaks the *physical
//! relationship* between two channels without pushing either outside its
//! normal range — invisible to per-channel threshold alarms, visible
//! only in the right feature subspace.
//!
//! We detect the anomalous readings with LOF on the full space, then use
//! Beam to tell the operator **which sensors** to inspect.
//!
//! ```text
//! cargo run --release --example sensor_fault
//! ```

use anomex::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Channel names of the simulated plant.
const CHANNELS: [&str; 8] = [
    "intake_temp",
    "coolant_temp", // physically coupled to intake_temp
    "pressure",
    "flow_rate", // physically coupled to pressure
    "vibration",
    "rpm",
    "voltage",
    "current", // physically coupled to voltage
];

fn simulate_plant(n: usize, seed: u64) -> (Dataset, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
    for _ in 0..n {
        // Latent operating point drives the coupled channel pairs.
        let load: f64 = rng.gen_range(0.2..0.9);
        let duty: f64 = rng.gen_range(0.1..0.8);
        let power: f64 = rng.gen_range(0.3..0.9);
        let noise = |rng: &mut StdRng| rng.gen_range(-0.015..0.015);
        rows.push(vec![
            load + noise(&mut rng),  // intake_temp
            load + noise(&mut rng),  // coolant_temp tracks intake
            duty + noise(&mut rng),  // pressure
            duty + noise(&mut rng),  // flow follows pressure
            rng.gen_range(0.0..1.0), // vibration: independent
            rng.gen_range(0.0..1.0), // rpm: independent
            power + noise(&mut rng), // voltage
            power + noise(&mut rng), // current follows voltage
        ]);
    }
    // Fault 1: coolant decoupled from intake (blocked radiator) — both
    // readings individually normal.
    let f1 = rows.len();
    rows.push(vec![0.30, 0.78, 0.5, 0.51, 0.4, 0.6, 0.55, 0.56]);
    // Fault 2: current no longer follows voltage (winding short).
    let f2 = rows.len();
    rows.push(vec![0.60, 0.61, 0.4, 0.41, 0.2, 0.3, 0.80, 0.35]);
    let ds = Dataset::from_rows(rows)
        .expect("simulation is well-formed")
        .with_names(CHANNELS.to_vec())
        .expect("8 names for 8 channels");
    (ds, vec![f1, f2])
}

fn main() {
    let (dataset, faults) = simulate_plant(600, 2024);
    println!(
        "plant log: {} readings x {} channels; {} faulty readings injected\n",
        dataset.n_rows() - 2,
        dataset.n_features(),
        faults.len()
    );

    // Step 1 — detection. LOF flags readings whose local density is off.
    let lof = Lof::new(15).expect("valid k");
    let scores = lof.score_all(&dataset.full_matrix());
    let mut ranked: Vec<usize> = (0..dataset.n_rows()).collect();
    ranked.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    println!("top-5 anomalous readings by full-space LOF:");
    for &i in ranked.iter().take(5) {
        let marker = if faults.contains(&i) {
            "  <-- injected fault"
        } else {
            ""
        };
        println!("  reading #{i:<4} LOF {:.2}{marker}", scores[i]);
    }

    // Step 2 — explanation. For each flagged reading, which sensor pair
    // exhibits the anomaly? One engine run explains every fault in
    // parallel, and its cache ensures the shared exhaustive 2d stage is
    // scored only once across the faults.
    let engine = ExplanationEngine::new(&dataset, &lof);
    let beam = ExplainerKind::Point(Box::new(Beam::new().result_size(3)));
    let run = engine
        .run(&beam, &RunSpec::new(faults.clone(), [2usize]))
        .into_single();
    println!("\ndiagnosis (Beam, 2d explanations):");
    for &fault in &faults {
        let explanation = &run.explanations[&fault];
        let (best, score) = &explanation.entries()[0];
        let names: Vec<&str> = best
            .iter()
            .map(|f| dataset.feature_names()[f].as_str())
            .collect();
        println!(
            "  reading #{fault}: inspect sensors {} (joint deviation {score:.1}σ)",
            names.join(" + ")
        );
        for (s, v) in explanation.entries().iter().skip(1) {
            let names: Vec<&str> = s
                .iter()
                .map(|f| dataset.feature_names()[f].as_str())
                .collect();
            println!("      runner-up: {} ({v:.1})", names.join(" + "));
        }
    }

    // Sanity: the diagnosis should name the decoupled pairs.
    assert_eq!(
        run.explanations[&faults[0]].best(),
        Some(&Subspace::new([0usize, 1])),
        "fault 1 should implicate intake_temp + coolant_temp"
    );
    assert_eq!(
        run.explanations[&faults[1]].best(),
        Some(&Subspace::new([6usize, 7])),
        "fault 2 should implicate voltage + current"
    );
    println!(
        "\nboth faults correctly localized ({} subspace evaluations, {} cache hits).",
        run.stats.evaluations, run.stats.cache_hits
    );
}
