//! Quickstart: generate a dataset with planted subspace outliers, detect
//! nothing — the points are *given* — and ask every explainer **why**
//! they are outlying.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use anomex::prelude::*;

fn main() {
    // A 14-feature dataset of 1000 points, reproducing the smallest
    // dataset of the paper's testbed: four blocks of correlated features
    // ({F0,F1}, {F2..F4}, {F5..F8}, {F9..F13}), five planted outliers
    // each.
    let generated = generate_hics(HicsPreset::D14, 42);
    let dataset = &generated.dataset;
    println!(
        "dataset: {} rows x {} features, {} known outliers",
        dataset.n_rows(),
        dataset.n_features(),
        generated.ground_truth.n_outliers()
    );

    // Pick an outlier explained by a 2d subspace according to the ground
    // truth.
    let point = generated
        .ground_truth
        .points_explained_at_dim(2)
        .into_iter()
        .next()
        .expect("the 14d testbed has a 2d block");
    let truth = &generated.ground_truth.relevant_for(point)[0];
    println!("\nexplaining point #{point} (ground truth: {truth})\n");

    // The detector is interchangeable — that's the point of the paper.
    let lof = Lof::new(15).expect("valid k");
    let scorer = SubspaceScorer::new(dataset, &lof);

    // --- Point explanation with Beam ------------------------------------
    let beam = Beam::new();
    let explanation = beam.explain(&scorer, point, 2);
    println!("Beam top-5 subspaces (score = standardized LOF):");
    for (s, score) in explanation.entries().iter().take(5) {
        let marker = if s == truth { "  <-- ground truth" } else { "" };
        println!("  {s:<16} {score:7.2}{marker}");
    }

    // --- Point explanation with RefOut ----------------------------------
    let refout = RefOut::new().seed(7);
    let explanation = refout.explain(&scorer, point, 2);
    println!("\nRefOut top-5 subspaces:");
    for (s, score) in explanation.entries().iter().take(5) {
        let marker = if s == truth { "  <-- ground truth" } else { "" };
        println!("  {s:<16} {score:7.2}{marker}");
    }

    // --- Summarize ALL outliers explained at 2d with LookOut ------------
    let pois = generated.ground_truth.points_explained_at_dim(2);
    let lookout = LookOut::new().budget(4);
    let summary = lookout.summarize(&scorer, &pois, 2);
    println!("\nLookOut summary for the {} outliers explained in 2d:", pois.len());
    for (s, gain) in summary.entries() {
        println!("  {s:<16} marginal gain {gain:7.2}");
    }

    println!(
        "\nsubspace evaluations: {} (cache hits: {})",
        scorer.evaluations(),
        scorer.cache_hits()
    );
}
