//! Quickstart: generate a dataset with planted subspace outliers, detect
//! nothing — the points are *given* — and ask every explainer **why**
//! they are outlying, through one [`ExplanationEngine`] whose score
//! cache is shared by all of them.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use anomex::prelude::*;

fn main() {
    // A 14-feature dataset of 1000 points, reproducing the smallest
    // dataset of the paper's testbed: four blocks of correlated features
    // ({F0,F1}, {F2..F4}, {F5..F8}, {F9..F13}), five planted outliers
    // each.
    let generated = generate_hics(HicsPreset::D14, 42);
    let dataset = &generated.dataset;
    println!(
        "dataset: {} rows x {} features, {} known outliers",
        dataset.n_rows(),
        dataset.n_features(),
        generated.ground_truth.n_outliers()
    );

    // Pick an outlier explained by a 2d subspace according to the ground
    // truth.
    let point = generated
        .ground_truth
        .points_explained_at_dim(2)
        .into_iter()
        .next()
        .expect("the 14d testbed has a 2d block");
    let truth = &generated.ground_truth.relevant_for(point)[0];
    println!("\nexplaining point #{point} (ground truth: {truth})\n");

    // The detector is interchangeable — that's the point of the paper.
    // The engine binds it to the dataset and keeps one score cache alive
    // across every explainer run below, so no subspace is ever scored
    // twice.
    let lof = Lof::new(15).expect("valid k");
    let engine = ExplanationEngine::new(dataset, &lof);

    // --- Point explanation with Beam ------------------------------------
    let beam = ExplainerKind::Point(Box::new(Beam::new()));
    let run = engine.run(&beam, &RunSpec::new(vec![point], [2usize]));
    let explanation = &run.dims[0].explanations[&point];
    println!("Beam top-5 subspaces (score = standardized LOF):");
    for (s, score) in explanation.entries().iter().take(5) {
        let marker = if s == truth { "  <-- ground truth" } else { "" };
        println!("  {s:<16} {score:7.2}{marker}");
    }
    println!(
        "  [{} detector evaluations, {} cache hits]",
        run.dims[0].stats.evaluations, run.dims[0].stats.cache_hits
    );

    // --- Point explanation with RefOut ----------------------------------
    // A different explainer, the same engine: RefOut's exhaustive stages
    // are largely served from the cache Beam already filled.
    let refout = ExplainerKind::Point(Box::new(RefOut::new().seed(7)));
    let run = engine.run(&refout, &RunSpec::new(vec![point], [2usize]));
    let explanation = &run.dims[0].explanations[&point];
    println!("\nRefOut top-5 subspaces:");
    for (s, score) in explanation.entries().iter().take(5) {
        let marker = if s == truth { "  <-- ground truth" } else { "" };
        println!("  {s:<16} {score:7.2}{marker}");
    }
    println!(
        "  [{} detector evaluations, {} cache hits]",
        run.dims[0].stats.evaluations, run.dims[0].stats.cache_hits
    );

    // --- Summarize ALL outliers explained at 2d with LookOut ------------
    let pois = generated.ground_truth.points_explained_at_dim(2);
    let lookout = ExplainerKind::Summary(Box::new(LookOut::new().budget(4)));
    let run = engine.run(&lookout, &RunSpec::new(pois.clone(), [2usize]));
    let summary = &run.dims[0].explanations[&pois[0]];
    println!(
        "\nLookOut summary for the {} outliers explained in 2d:",
        pois.len()
    );
    for (s, gain) in summary.entries() {
        println!("  {s:<16} marginal gain {gain:7.2}");
    }
    println!(
        "  [{} detector evaluations, {} cache hits — {:.0}% served warm]",
        run.dims[0].stats.evaluations,
        run.dims[0].stats.cache_hits,
        100.0 * run.dims[0].stats.hit_rate()
    );

    let totals = engine.cache().stats();
    println!(
        "\nengine totals: {} unique subspaces scored, {} requests served from cache",
        totals.evaluations, totals.hits
    );
}
