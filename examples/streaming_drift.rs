//! Streaming scenario (the paper's §6 future work): anomaly detection
//! and explanation over a data stream with concept drift, using LODA
//! (Pevný 2015) — the on-line detector the paper names as the candidate
//! for extending the testbed to stream processing.
//!
//! We fit LODA on a warm-up window, then stream new observations:
//! anomalies are flagged against the current model, *explained* by
//! LODA's per-feature importance (a one-tailed Welch test over the
//! projections that use vs don't use each feature), and the model keeps
//! adapting — so a pattern that starts as an anomaly and becomes the new
//! normal stops alerting (concept drift absorbed).
//!
//! ```text
//! cargo run --release --example streaming_drift
//! ```

use anomex::prelude::*;
use anomex_detectors::loda::Loda;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FEATURES: [&str; 6] = [
    "cpu",
    "memory",
    "disk_io",
    "net_io",
    "latency",
    "error_rate",
];

fn normal_obs(rng: &mut StdRng) -> Vec<f64> {
    let load: f64 = rng.gen_range(0.2..0.6);
    vec![
        load + rng.gen_range(-0.05..0.05),             // cpu tracks load
        load * 0.8 + rng.gen_range(-0.05..0.05),       // memory tracks load
        rng.gen_range(0.1..0.4),                       // disk
        rng.gen_range(0.1..0.4),                       // net
        0.2 + load * 0.3 + rng.gen_range(-0.03..0.03), // latency
        rng.gen_range(0.0..0.05),                      // errors near zero
    ]
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // Warm-up window: 500 normal observations.
    let warmup: Vec<Vec<f64>> = (0..500).map(|_| normal_obs(&mut rng)).collect();
    let ds = Dataset::from_rows(warmup).expect("well-formed");
    let loda = Loda::builder()
        .projections(100)
        .seed(7)
        .build()
        .expect("valid");
    let mut model = loda.fit(&ds.full_matrix());

    // Alert threshold: mean + 3σ of warm-up scores.
    let scores: Vec<f64> = (0..ds.n_rows()).map(|i| model.score(&ds.row(i))).collect();
    let mean = scores.iter().sum::<f64>() / scores.len() as f64;
    let var = scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / scores.len() as f64;
    let threshold = mean + 3.0 * var.sqrt();
    println!(
        "warm-up: {} observations, alert threshold {threshold:.3}\n",
        ds.n_rows()
    );

    // Phase 1 — a genuine anomaly: error-rate spike (with the latency
    // bump that real incidents drag along).
    let mut anomaly = normal_obs(&mut rng);
    anomaly[5] = 0.95;
    anomaly[4] = 0.85;
    let score = model.score(&anomaly);
    println!(
        "t=501  error spike       score {score:.3} {}",
        alert(score, threshold)
    );
    let imp = model.feature_importance(&anomaly);
    let top = argmax(&imp);
    println!(
        "       blamed feature:   {} (importance {:.1})",
        FEATURES[top], imp[top]
    );
    assert_eq!(FEATURES[top], "error_rate");

    // Phase 2 — concept drift: the service moves to a high-load regime.
    // The first high-load observations alert...
    let drifted = |rng: &mut StdRng| {
        let load: f64 = rng.gen_range(0.75..0.95);
        vec![
            load + rng.gen_range(-0.05..0.05),
            load * 0.8 + rng.gen_range(-0.05..0.05),
            rng.gen_range(0.1..0.4),
            rng.gen_range(0.1..0.4),
            0.2 + load * 0.3 + rng.gen_range(-0.03..0.03),
            rng.gen_range(0.0..0.05),
        ]
    };
    let first = drifted(&mut rng);
    let before = model.score(&first);
    println!(
        "\nt=502  high-load regime  score {before:.3} {}",
        alert(before, threshold)
    );

    // ...but as the stream continues, the model absorbs the new normal.
    for _ in 0..800 {
        let obs = drifted(&mut rng);
        model.update(&obs);
    }
    let after = model.score(&drifted(&mut rng));
    println!(
        "t=1302 high-load regime  score {after:.3} {} (model adapted)",
        alert(after, threshold)
    );
    assert!(after < before, "streaming updates must absorb the drift");

    // The error spike still stands far above the adapted normal —
    // adaptation is selective, not amnesia. (A production deployment
    // would re-estimate the alert threshold along with the model.)
    let score2 = model.score(&anomaly);
    println!(
        "t=1303 error spike       score {score2:.3} ({:.1}x the adapted normal)",
        score2 / after
    );
    assert!(score2 > after, "true anomalies must keep standing out");

    println!("\nstream processed: drift absorbed, anomalies still flagged and explained.");
}

fn alert(score: f64, threshold: f64) -> &'static str {
    if score > threshold {
        "ALERT"
    } else {
        "ok"
    }
}

fn argmax(xs: &[f64]) -> usize {
    (0..xs.len())
        .max_by(|&a, &b| xs[a].total_cmp(&xs[b]))
        .expect("non-empty")
}
