//! Serving demo: stand up the in-process explanation service, speak the
//! JSON-lines protocol to it, and prove the answers are **bit-identical**
//! to calling the [`ExplanationEngine`] directly.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```
//!
//! The same service is available out-of-process as the `anomex_serve`
//! binary (`--stdin` or `--listen ADDR`); this example drives it
//! in-process so the comparison against the direct path is trivial.

use anomex::prelude::*;
use anomex::serve::batch::BatchConfig;
use anomex::serve::protocol::{Request, RequestBody};
use anomex::serve::service::{ExplanationService, ServeHandle};
use std::sync::Arc;

fn main() {
    // The paper's 14-feature testbed; the service also resolves it by
    // name ("hics14") on demand, so no upload is needed.
    let generated = generate_hics(HicsPreset::D14, 42);
    let point = generated
        .ground_truth
        .points_explained_at_dim(2)
        .into_iter()
        .next()
        .expect("the 14d testbed has a 2d block");

    let service = Arc::new(ExplanationService::new());
    let handle = ServeHandle::start(service, BatchConfig::default(), None);

    // --- 1. Score the point under LOF in the full space -----------------
    let request = Request {
        id: 1,
        body: RequestBody::Score {
            dataset: "hics14".into(),
            detector: "lof:k=15".into(),
            subspace: None,
            point,
        },
    };
    println!("-> {}", serde_json::to_string(&request).unwrap());
    let response = handle.roundtrip(request);
    println!("<- {}", serde_json::to_string(&response).unwrap());
    assert!(response.ok, "{:?}", response.error);

    // --- 2. Explain it with Beam, 2d -------------------------------------
    let request = Request {
        id: 2,
        body: RequestBody::Explain {
            dataset: "hics14".into(),
            detector: "lof:k=15".into(),
            explainer: "beam".into(),
            point,
            dim: 2,
        },
    };
    println!("\n-> {}", serde_json::to_string(&request).unwrap());
    let response = handle.roundtrip(request);
    println!("<- {}", serde_json::to_string(&response).unwrap());
    assert!(response.ok, "{:?}", response.error);
    let served = response.explanation.as_deref().expect("explanation");

    // --- 3. The same run, directly — served answers must match bit for
    //        bit, because the registry freezes the model and the engine
    //        path is shared. -----------------------------------------------
    let lof = Lof::new(15).expect("valid k");
    let engine = ExplanationEngine::new(&generated.dataset, &lof);
    let beam = ExplainerKind::Point(Box::new(Beam::new()));
    let run = engine.run(&beam, &RunSpec::new(vec![point], [2usize]));
    let direct = &run.dims[0].explanations[&point];

    assert_eq!(served.len(), direct.len());
    for (got, (subspace, score)) in served.iter().zip(direct.entries()) {
        let features: Vec<usize> = subspace.iter().collect();
        assert_eq!(got.subspace, features);
        assert_eq!(got.score, *score, "serving changed a bit");
    }
    println!("\nserved explanation == direct engine run, bit for bit");

    if let Some(timing) = response.timing {
        println!(
            "service timing: {}us queued, {}us executing, batch of {}",
            timing.queue_micros, timing.exec_micros, timing.batch_size
        );
    }
}
