//! Detector comparison on the two outlier regimes the paper contrasts:
//! *full-space* outliers (deviation spread over all features) vs
//! *subspace* outliers (masked in every low-dimensional projection).
//!
//! This reproduces, at example scale, the asymmetry that drives the
//! paper's "is any detector good for any explainer?" question: LOF
//! dominates on density-based subspace outliers, while all three
//! detectors handle full-space outliers.
//!
//! ```text
//! cargo run --release --example detector_shootout
//! ```

use anomex::prelude::*;
use anomex_stats::rank::top_k_desc;

/// Fraction of `expected` points found in the `k` top-scored rows.
fn recall_at_k(scores: &[f64], expected: &[usize], k: usize) -> f64 {
    let top = top_k_desc(scores, k);
    expected.iter().filter(|p| top.contains(p)).count() as f64 / expected.len() as f64
}

fn main() {
    let detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(Lof::new(15).expect("valid k")),
        Box::new(FastAbod::new(10).expect("valid k")),
        Box::new(
            IsolationForest::builder()
                .trees(100)
                .repetitions(5)
                .seed(3)
                .build()
                .expect("valid parameters"),
        ),
    ];

    // Regime 1 — full-space outliers (the paper's real-dataset family).
    let (full_ds, full_outliers) = generate_fullspace_with_outliers(FullSpacePreset::BreastA, 11);
    println!(
        "regime 1: full-space outliers ({})",
        FullSpacePreset::BreastA.name()
    );
    println!("{:<12} {:>12} {:>12}", "detector", "recall@n", "recall@2n");
    let n = full_outliers.len();
    for det in &detectors {
        let scores = det.score_all(&full_ds.full_matrix());
        println!(
            "{:<12} {:>12.2} {:>12.2}",
            det.name(),
            recall_at_k(&scores, &full_outliers, n),
            recall_at_k(&scores, &full_outliers, 2 * n),
        );
    }

    // Regime 2 — subspace outliers, scored in the FULL feature space:
    // every detector should struggle because the deviation is confined
    // to a small feature block.
    let g = generate_hics(HicsPreset::D39, 11);
    let sub_outliers = g.ground_truth.outliers();
    println!("\nregime 2: subspace outliers scored in the FULL 39d space");
    println!("{:<12} {:>12} {:>12}", "detector", "recall@n", "recall@2n");
    let n = sub_outliers.len();
    for det in &detectors {
        let scores = det.score_all(&g.dataset.full_matrix());
        println!(
            "{:<12} {:>12.2} {:>12.2}",
            det.name(),
            recall_at_k(&scores, &sub_outliers, n),
            recall_at_k(&scores, &sub_outliers, 2 * n),
        );
    }

    // Regime 3 — the same subspace outliers, scored in their RELEVANT
    // blocks: this is what an explanation pipeline enables.
    println!("\nregime 3: same outliers scored in their ground-truth blocks");
    println!("{:<12} {:>12}", "detector", "mean block recall@30");
    for det in &detectors {
        let mut total = 0.0;
        for block in &g.blocks {
            let members: Vec<usize> = g
                .ground_truth
                .outliers()
                .into_iter()
                .filter(|&p| g.ground_truth.relevant_for(p).contains(block))
                .collect();
            let scores = det.score_all(&g.dataset.project(block));
            total += recall_at_k(&scores, &members, 30);
        }
        println!("{:<12} {:>12.2}", det.name(), total / g.blocks.len() as f64);
    }
    println!("\ntakeaway: no detector sees masked outliers in the full space —");
    println!("finding the right subspace (the explainers' job) is what makes them visible.");
}
