//! Security scenario: an analyst receives a batch of alerts (outliers)
//! from a network monitor and wants a **small set of feature views**
//! that together show all of them — the explanation-summarization
//! problem (paper §2.3).
//!
//! Different attack families violate different feature relationships
//! (e.g. bytes-per-packet for exfiltration, SYN/ACK ratio for scans), so
//! no single 2d plot shows everything. LookOut picks the `budget` best
//! complementary views; HiCS finds the high-contrast subspaces that
//! separate the alerts without even consulting the detector during
//! search.
//!
//! ```text
//! cargo run --release --example intrusion_summary
//! ```

use anomex::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FEATURES: [&str; 10] = [
    "bytes_out",
    "pkts_out", // coupled with bytes_out
    "bytes_in",
    "pkts_in", // coupled with bytes_in
    "syn_rate",
    "ack_rate", // coupled with syn_rate
    "dst_ports",
    "dst_hosts", // coupled with dst_ports
    "duration",  // independent
    "ttl_var",   // independent
];

fn simulate_traffic(n: usize, seed: u64) -> (Dataset, Vec<usize>, Vec<Subspace>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n + 6);
    for _ in 0..n {
        let out_vol: f64 = rng.gen_range(0.1..0.9);
        let in_vol: f64 = rng.gen_range(0.1..0.9);
        let hand: f64 = rng.gen_range(0.1..0.9);
        let spread: f64 = rng.gen_range(0.1..0.9);
        let e = |rng: &mut StdRng| rng.gen_range(-0.02..0.02);
        rows.push(vec![
            out_vol + e(&mut rng),
            out_vol + e(&mut rng),
            in_vol + e(&mut rng),
            in_vol + e(&mut rng),
            hand + e(&mut rng),
            hand + e(&mut rng),
            spread + e(&mut rng),
            spread + e(&mut rng),
            rng.gen_range(0.0..1.0),
            rng.gen_range(0.0..1.0),
        ]);
    }
    let mut alerts = Vec::new();
    // Exfiltration: huge bytes_out for few pkts_out (breaks {0,1}).
    for _ in 0..3 {
        alerts.push(rows.len());
        let mut r = rows[rng.gen_range(0..n)].clone();
        r[0] = 0.85;
        r[1] = 0.25;
        rows.push(r);
    }
    // SYN scan: syn_rate without matching ack_rate (breaks {4,5}).
    for _ in 0..3 {
        alerts.push(rows.len());
        let mut r = rows[rng.gen_range(0..n)].clone();
        r[4] = 0.8;
        r[5] = 0.2;
        rows.push(r);
    }
    let ds = Dataset::from_rows(rows)
        .expect("well-formed")
        .with_names(FEATURES.to_vec())
        .expect("10 names");
    let truth = vec![Subspace::new([0usize, 1]), Subspace::new([4usize, 5])];
    (ds, alerts, truth)
}

fn show(summary: &RankedSubspaces, ds: &Dataset, truth: &[Subspace]) {
    for (s, score) in summary.entries() {
        let names: Vec<&str> = s.iter().map(|f| ds.feature_names()[f].as_str()).collect();
        let marker = if truth.contains(s) {
            "  <-- planted attack pattern"
        } else {
            ""
        };
        println!("  view [{}]  score {score:6.2}{marker}", names.join(" vs "));
    }
}

fn main() {
    let (dataset, alerts, truth) = simulate_traffic(800, 7);
    println!(
        "traffic log: {} flows, {} alerts to explain\n",
        dataset.n_rows(),
        alerts.len()
    );

    let lof = Lof::new(15).expect("valid k");
    let scorer = SubspaceScorer::new(&dataset, &lof);

    // LookOut: the analyst asks for at most 3 complementary 2d views.
    let summary = LookOut::new().budget(3).summarize(&scorer, &alerts, 2);
    println!(
        "LookOut dashboard ({} views cover all alerts):",
        summary.len()
    );
    show(&summary, &dataset, &truth);

    // HiCS: search by feature correlation, rank with the detector.
    let hics = Hics::new()
        .monte_carlo_iterations(50)
        .candidate_cutoff(100)
        .result_size(5);
    let summary_hics = hics.summarize(&scorer, &alerts, 2);
    println!("\nHiCS top-5 high-contrast views:");
    show(&summary_hics, &dataset, &truth);

    // LookOut was designed for *pictorial* explanation: render the best
    // view as the analyst would see it (alerts drawn as '#').
    if let Some(best) = summary.best() {
        println!("\nbest view, plotted:\n");
        println!(
            "{}",
            anomex::eval::plot::scatter(&dataset, best, &alerts, 60, 18)
        );
    }

    // Both planted attack patterns must surface in LookOut's summary.
    let found = truth
        .iter()
        .filter(|t| summary.rank_of(t).is_some())
        .count();
    assert_eq!(found, 2, "LookOut must cover both attack families");
    println!("\nboth attack families covered by the LookOut summary.");
}
